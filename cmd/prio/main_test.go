package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dagman"
	"repro/internal/workloads"
)

const fig3 = `Job a a.sub
Job b b.sub
Job c c.sub
Job d d.sub
Job e e.sub
Parent a Child b
Parent c Child d e
`

func writeInput(t *testing.T) (dir, dagPath string) {
	t.Helper()
	dir = t.TempDir()
	dagPath = filepath.Join(dir, "IV.dag")
	if err := os.WriteFile(dagPath, []byte(fig3), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		sub := "executable = " + name + "\nqueue\n"
		if err := os.WriteFile(filepath.Join(dir, name+".sub"), []byte(sub), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir, dagPath
}

func TestRunStdout(t *testing.T) {
	_, dagPath := writeInput(t)
	var out strings.Builder
	if err := run([]string{dagPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `Vars c jobpriority="5"`) {
		t.Fatalf("missing Fig. 3 priority for c:\n%s", out.String())
	}
}

func TestRunOutputFileAndSubmit(t *testing.T) {
	dir, dagPath := writeInput(t)
	outPath := filepath.Join(dir, "out.dag")
	var stdout strings.Builder
	if err := run([]string{"-o", outPath, "-submit", dagPath}, &stdout); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Fatal("wrote to stdout despite -o")
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "jobpriority") {
		t.Fatal("output file not instrumented")
	}
	sub, err := os.ReadFile(filepath.Join(dir, "c.sub"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sub), "priority = $(jobpriority)") {
		t.Fatalf("submit file not instrumented:\n%s", sub)
	}
}

func TestRunInplace(t *testing.T) {
	_, dagPath := writeInput(t)
	var stdout strings.Builder
	if err := run([]string{"-inplace", dagPath}, &stdout); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(dagPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `Vars c jobpriority="5"`) {
		t.Fatal("input not instrumented in place")
	}
	// running again must not duplicate the VARS lines
	if err := run([]string{"-inplace", dagPath}, &stdout); err != nil {
		t.Fatal(err)
	}
	text2, _ := os.ReadFile(dagPath)
	if strings.Count(string(text2), "jobpriority") != 5 {
		t.Fatalf("idempotence broken:\n%s", text2)
	}
}

func TestRunDotOutput(t *testing.T) {
	dir, dagPath := writeInput(t)
	dotPath := filepath.Join(dir, "g.dot")
	var stdout strings.Builder
	if err := run([]string{"-o", filepath.Join(dir, "x.dag"), "-dot", dotPath, dagPath}, &stdout); err != nil {
		t.Fatal(err)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") || !strings.Contains(string(dot), "p=5") {
		t.Fatalf("dot output wrong:\n%s", dot)
	}
}

func TestRunNaiveMatchesDefault(t *testing.T) {
	_, dagPath := writeInput(t)
	var a, b strings.Builder
	if err := run([]string{dagPath}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-naive", dagPath}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("naive and B-tree combine disagree")
	}
}

func TestRunSplicedInput(t *testing.T) {
	dir := t.TempDir()
	inner := filepath.Join(dir, "inner.dag")
	os.WriteFile(inner, []byte("Job s s.sub\nJob t t.sub\nParent s Child t\n"), 0o644)
	outer := filepath.Join(dir, "outer.dag")
	os.WriteFile(outer, []byte("Splice in inner.dag\nJob end end.sub\nParent in Child end\n"), 0o644)
	var out strings.Builder
	if err := run([]string{outer}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Job in+s", "Job in+t", `Vars in+s jobpriority="3"`, "Parent in+t Child end"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("flattened output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"/no/such/file.dag"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dag")
	os.WriteFile(bad, []byte("Job a\n"), 0o644)
	if err := run([]string{bad}, &out); err == nil {
		t.Fatal("malformed file accepted")
	}
	cyc := filepath.Join(dir, "cyc.dag")
	os.WriteFile(cyc, []byte("Job a a.sub\nJob b b.sub\nParent a Child b\nParent b Child a\n"), 0o644)
	if err := run([]string{cyc}, &out); err == nil {
		t.Fatal("cyclic file accepted")
	}
	// -submit with missing JSDF
	lone := filepath.Join(dir, "lone.dag")
	os.WriteFile(lone, []byte("Job a missing.sub\n"), 0o644)
	if err := run([]string{"-o", filepath.Join(dir, "o.dag"), "-submit", lone}, &out); err == nil {
		t.Fatal("missing submit file accepted")
	}
}

func TestRunMultipleFilesParallel(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 6; i++ {
		p := filepath.Join(dir, fmt.Sprintf("w%d.dag", i))
		if err := os.WriteFile(p, []byte(fig3), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	var out strings.Builder
	if err := run(append([]string{"-inplace"}, paths...), &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(text), `Vars c jobpriority="5"`) {
			t.Fatalf("%s not instrumented", p)
		}
	}
	// multiple files without -inplace must be rejected
	if err := run(paths, &out); err == nil {
		t.Fatal("multiple inputs without -inplace accepted")
	}
}

// TestRunAIRSNEndToEnd pushes the paper's full AIRSN dag through the
// real tool surface: render the 773-job dag as a DAGMan input file, run
// prio on it, and confirm the Fig. 5 bottleneck priority (753) in the
// instrumented output.
func TestRunAIRSNEndToEnd(t *testing.T) {
	g := workloads.PaperAIRSN()
	f := dagman.FromGraph(g, nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "airsn.dag")
	if err := os.WriteFile(path, []byte(f.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	fork := g.Name(workloads.AIRSNForkJob(g))
	want := fmt.Sprintf("Vars %s jobpriority=\"753\"", fork)
	if !strings.Contains(out.String(), want) {
		t.Fatalf("instrumented AIRSN missing %q", want)
	}
	// re-parse and confirm every job carries a priority
	f2, err := dagman.Parse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Jobs) != 773 {
		t.Fatalf("round trip lost jobs: %d", len(f2.Jobs))
	}
	if got := strings.Count(out.String(), "jobpriority"); got != 773 {
		t.Fatalf("%d jobpriority lines, want 773", got)
	}
}

// TestRunMultipleFilesPartialFailure: in multi-file -inplace mode a bad
// input must produce a non-nil error (so main exits non-zero) that
// names every failed file, while the good files are still instrumented.
func TestRunMultipleFilesPartialFailure(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.dag")
	if err := os.WriteFile(good, []byte(fig3), 0o644); err != nil {
		t.Fatal(err)
	}
	malformed := filepath.Join(dir, "malformed.dag")
	if err := os.WriteFile(malformed, []byte("Job a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.dag")

	var out strings.Builder
	err := run([]string{"-inplace", good, malformed, missing}, &out)
	if err == nil {
		t.Fatal("bad inputs accepted in multi-file -inplace mode")
	}
	for _, want := range []string{malformed, missing} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not name failed input %s:\n%v", want, err)
		}
	}
	text, readErr := os.ReadFile(good)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.Contains(string(text), `Vars c jobpriority="5"`) {
		t.Errorf("good file not instrumented despite failures elsewhere:\n%s", text)
	}
}
