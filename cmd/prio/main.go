// Command prio is the scheduling tool of Section 3.2: given a DAGMan
// input file, it prioritizes the jobs with the heuristic of Section 3.1
// and instruments the file (and optionally the referenced job submit
// description files) so that Condor assigns jobs in PRIO order.
//
// Usage:
//
//	prio [flags] input.dag [more.dag ...]
//
//	-o file      write the instrumented DAGMan file here (default: stdout)
//	-inplace     overwrite the input file instead
//	-submit      also instrument the referenced JSDFs in place
//	-dot file    write the prioritized dag in Graphviz format
//	-stats       print scheduling statistics to stderr
//	-naive       use the pre-engineering naive Combine phase (Section 3.5)
//	-parallel N  Recurse-phase workers (1 = sequential reference; <=0 = all CPUs)
//	-cache       memoize component schedules and the transitive reduction
//
// Several DAGMan files may be given with -inplace; they are prioritized
// in parallel.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dagman"
	"repro/internal/decompose"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prio:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("prio", flag.ContinueOnError)
	out := fs.String("o", "", "output path for the instrumented DAGMan file (default stdout)")
	inplace := fs.Bool("inplace", false, "overwrite the input file")
	submit := fs.Bool("submit", false, "also instrument referenced submit description files in place")
	dotOut := fs.String("dot", "", "write the prioritized dag in Graphviz dot format")
	showStats := fs.Bool("stats", false, "print scheduling statistics to stderr")
	naive := fs.Bool("naive", false, "use the naive Combine implementation")
	parallel := fs.Int("parallel", 1, "Recurse-phase worker count (1 = sequential reference, <=0 = all CPUs)")
	useCache := fs.Bool("cache", false, "memoize component schedules and the transitive reduction")
	theoretical := fs.Bool("theoretical", false, "also report whether the idealized Section 2.2 algorithm handles this dag")
	explain := fs.String("explain", "", "explain the priority assigned to this job (comma list of job names)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: prio [flags] input.dag [more.dag ...]")
	}
	if fs.NArg() > 1 {
		if !*inplace {
			return fmt.Errorf("multiple inputs require -inplace")
		}
		return runParallel(fs.Args(), *submit, *naive, *parallel, *useCache, *showStats)
	}
	input := fs.Arg(0)

	f, err := dagman.ParseFile(input)
	if err != nil {
		return err
	}
	if len(f.Splices) > 0 {
		// Spliced workflows are flattened first; the instrumented output
		// is the flattened file, which is what DAGMan executes anyway.
		f, err = f.Flatten(dagman.LoadSplice(filepath.Dir(input)))
		if err != nil {
			return err
		}
	}
	g, err := f.Graph()
	if err != nil {
		return err
	}

	opts := core.Options{Parallel: *parallel}
	if *parallel <= 0 {
		opts.Parallel = -1 // one worker per logical CPU
	}
	if *naive {
		opts.Combine = core.CombineNaive
	}
	if *useCache {
		opts.Cache = core.NewCache()
	}
	start := time.Now()
	sched := core.PrioritizeOpts(g, opts)
	elapsed := time.Since(start)

	priorities := make(map[string]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		priorities[g.Name(v)] = sched.Priority[v]
	}
	text := f.Instrument(priorities)

	switch {
	case *inplace:
		if err := os.WriteFile(input, []byte(text), 0o644); err != nil {
			return err
		}
	case *out != "":
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			return err
		}
	default:
		fmt.Fprint(w, text)
	}

	if *submit {
		if err := instrumentSubmitFiles(f, filepath.Dir(input)); err != nil {
			return err
		}
	}

	if *dotOut != "" {
		dot := g.DOT(filepath.Base(input), func(v int) string {
			return fmt.Sprintf("label=\"%s\\np=%d\"", g.Name(v), sched.Priority[v])
		})
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			return err
		}
	}

	if *showStats {
		printStats(sched, elapsed)
		if opts.Cache != nil {
			cs := opts.Cache.Stats()
			fmt.Fprintf(os.Stderr, "schedule cache: %d hits, %d misses (%.1f%% hit rate), %d distinct shapes\n",
				cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Entries)
		}
	}
	if *explain != "" {
		for _, name := range strings.Split(*explain, ",") {
			name = strings.TrimSpace(name)
			v := g.IndexOf(name)
			if v < 0 {
				return fmt.Errorf("cannot explain %q: no such job", name)
			}
			fmt.Fprint(os.Stderr, sched.Explain(v))
		}
	}
	if *theoretical {
		var dopts decompose.Options
		if opts.Cache != nil {
			// Share the Step 1 reduction already computed by the heuristic.
			dopts.ReduceCache = opts.Cache.ReduceCache()
		}
		if _, err := core.TheoreticalScheduleOpts(g, dopts); err != nil {
			fmt.Fprintf(os.Stderr, "theoretical algorithm: FAILS (%v); the heuristic schedule above is the graceful fallback\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "theoretical algorithm: succeeds; the schedule is IC-optimal")
		}
	}
	return nil
}

// runParallel prioritizes several DAGMan files concurrently, rewriting
// each in place. With -cache one schedule cache (and its embedded
// reduction cache) is shared by every file, so repeated component
// shapes across a batch of workflows are scheduled once.
func runParallel(inputs []string, submit, naive bool, parallel int, useCache, showStats bool) error {
	opts := core.Options{Parallel: parallel}
	if parallel <= 0 {
		opts.Parallel = -1
	}
	if naive {
		opts.Combine = core.CombineNaive
	}
	if useCache {
		opts.Cache = core.NewCache()
	}
	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	sem := make(chan struct{}, runtime.NumCPU())
	start := time.Now()
	for i, input := range inputs {
		wg.Add(1)
		go func(i int, input string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := instrumentInPlace(input, submit, opts); err != nil {
				errs[i] = fmt.Errorf("%s: %w", input, err)
			}
		}(i, input)
	}
	wg.Wait()
	// Report every failed input, not just the first: with -inplace the
	// successful files have already been rewritten, so the caller needs
	// the full list of the ones that were not.
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if showStats {
		fmt.Fprintf(os.Stderr, "prioritized %d files in %v\n", len(inputs), time.Since(start).Round(time.Microsecond))
		if opts.Cache != nil {
			cs := opts.Cache.Stats()
			fmt.Fprintf(os.Stderr, "schedule cache: %d hits, %d misses (%.1f%% hit rate), %d distinct shapes\n",
				cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Entries)
		}
	}
	return nil
}

// instrumentInPlace runs the pipeline on one DAGMan file and rewrites
// it (and optionally its submit files) in place.
func instrumentInPlace(input string, submit bool, opts core.Options) error {
	f, err := dagman.ParseFile(input)
	if err != nil {
		return err
	}
	if len(f.Splices) > 0 {
		f, err = f.Flatten(dagman.LoadSplice(filepath.Dir(input)))
		if err != nil {
			return err
		}
	}
	g, err := f.Graph()
	if err != nil {
		return err
	}
	sched := core.PrioritizeOpts(g, opts)
	priorities := make(map[string]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		priorities[g.Name(v)] = sched.Priority[v]
	}
	if err := os.WriteFile(input, []byte(f.Instrument(priorities)), 0o644); err != nil {
		return err
	}
	if submit {
		return instrumentSubmitFiles(f, filepath.Dir(input))
	}
	return nil
}

// instrumentSubmitFiles rewrites each distinct JSDF referenced by the
// DAGMan file with a priority = $(jobpriority) attribute. Paths are
// resolved relative to the DAGMan file's directory.
func instrumentSubmitFiles(f *dagman.File, dir string) error {
	done := make(map[string]bool)
	for _, j := range f.Jobs {
		path := j.SubmitFile
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if done[path] {
			continue
		}
		done[path] = true
		sf, err := dagman.ParseSubmitFile(path)
		if err != nil {
			return fmt.Errorf("submit file for job %s: %w", j.Name, err)
		}
		sf.InstrumentPriority()
		if err := os.WriteFile(path, []byte(sf.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printStats(s *core.Schedule, elapsed time.Duration) {
	g := s.Graph
	fmt.Fprintf(os.Stderr, "jobs: %d  dependencies: %d  shortcuts removed: %d\n",
		g.NumNodes(), g.NumArcs(), len(s.Decomposition.Shortcuts))
	families := map[string]int{}
	bip := 0
	for _, cs := range s.Components {
		families[cs.Family.String()]++
		if cs.Comp.Bipartite {
			bip++
		}
	}
	fmt.Fprintf(os.Stderr, "components: %d (%d via bipartite fast path) by family: %v\n",
		len(s.Components), bip, families)
	fmt.Fprintf(os.Stderr, "scheduling time: %v\n", elapsed)
}
