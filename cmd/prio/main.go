// Command prio is the scheduling tool of Section 3.2: given a DAGMan
// input file, it prioritizes the jobs with the heuristic of Section 3.1
// and instruments the file (and optionally the referenced job submit
// description files) so that Condor assigns jobs in PRIO order.
//
// Usage:
//
//	prio [flags] input.dag [more.dag ...]
//
//	-o file      write the instrumented DAGMan file here (default: stdout)
//	-inplace     overwrite the input file instead
//	-submit      also instrument the referenced JSDFs in place
//	-dot file    write the prioritized dag in Graphviz format
//	-stats       print scheduling statistics to stderr
//	-naive       use the pre-engineering naive Combine phase (Section 3.5)
//
// Several DAGMan files may be given with -inplace; they are prioritized
// in parallel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dagman"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prio:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("prio", flag.ContinueOnError)
	out := fs.String("o", "", "output path for the instrumented DAGMan file (default stdout)")
	inplace := fs.Bool("inplace", false, "overwrite the input file")
	submit := fs.Bool("submit", false, "also instrument referenced submit description files in place")
	dotOut := fs.String("dot", "", "write the prioritized dag in Graphviz dot format")
	showStats := fs.Bool("stats", false, "print scheduling statistics to stderr")
	naive := fs.Bool("naive", false, "use the naive Combine implementation")
	theoretical := fs.Bool("theoretical", false, "also report whether the idealized Section 2.2 algorithm handles this dag")
	explain := fs.String("explain", "", "explain the priority assigned to this job (comma list of job names)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: prio [flags] input.dag [more.dag ...]")
	}
	if fs.NArg() > 1 {
		if !*inplace {
			return fmt.Errorf("multiple inputs require -inplace")
		}
		return runParallel(fs.Args(), *submit, *naive)
	}
	input := fs.Arg(0)

	f, err := dagman.ParseFile(input)
	if err != nil {
		return err
	}
	if len(f.Splices) > 0 {
		// Spliced workflows are flattened first; the instrumented output
		// is the flattened file, which is what DAGMan executes anyway.
		f, err = f.Flatten(dagman.LoadSplice(filepath.Dir(input)))
		if err != nil {
			return err
		}
	}
	g, err := f.Graph()
	if err != nil {
		return err
	}

	opts := core.Options{}
	if *naive {
		opts.Combine = core.CombineNaive
	}
	start := time.Now()
	sched := core.PrioritizeOpts(g, opts)
	elapsed := time.Since(start)

	priorities := make(map[string]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		priorities[g.Name(v)] = sched.Priority[v]
	}
	text := f.Instrument(priorities)

	switch {
	case *inplace:
		if err := os.WriteFile(input, []byte(text), 0o644); err != nil {
			return err
		}
	case *out != "":
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			return err
		}
	default:
		fmt.Fprint(w, text)
	}

	if *submit {
		if err := instrumentSubmitFiles(f, filepath.Dir(input)); err != nil {
			return err
		}
	}

	if *dotOut != "" {
		dot := g.DOT(filepath.Base(input), func(v int) string {
			return fmt.Sprintf("label=\"%s\\np=%d\"", g.Name(v), sched.Priority[v])
		})
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			return err
		}
	}

	if *showStats {
		printStats(sched, elapsed)
	}
	if *explain != "" {
		for _, name := range strings.Split(*explain, ",") {
			name = strings.TrimSpace(name)
			v := g.IndexOf(name)
			if v < 0 {
				return fmt.Errorf("cannot explain %q: no such job", name)
			}
			fmt.Fprint(os.Stderr, sched.Explain(v))
		}
	}
	if *theoretical {
		if _, err := core.TheoreticalSchedule(g); err != nil {
			fmt.Fprintf(os.Stderr, "theoretical algorithm: FAILS (%v); the heuristic schedule above is the graceful fallback\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "theoretical algorithm: succeeds; the schedule is IC-optimal")
		}
	}
	return nil
}

// runParallel prioritizes several DAGMan files concurrently, rewriting
// each in place.
func runParallel(inputs []string, submit, naive bool) error {
	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	sem := make(chan struct{}, runtime.NumCPU())
	for i, input := range inputs {
		wg.Add(1)
		go func(i int, input string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			args := []string{"-inplace"}
			if submit {
				args = append(args, "-submit")
			}
			if naive {
				args = append(args, "-naive")
			}
			args = append(args, input)
			if err := run(args, io.Discard); err != nil {
				errs[i] = fmt.Errorf("%s: %w", input, err)
			}
		}(i, input)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// instrumentSubmitFiles rewrites each distinct JSDF referenced by the
// DAGMan file with a priority = $(jobpriority) attribute. Paths are
// resolved relative to the DAGMan file's directory.
func instrumentSubmitFiles(f *dagman.File, dir string) error {
	done := make(map[string]bool)
	for _, j := range f.Jobs {
		path := j.SubmitFile
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		if done[path] {
			continue
		}
		done[path] = true
		sf, err := dagman.ParseSubmitFile(path)
		if err != nil {
			return fmt.Errorf("submit file for job %s: %w", j.Name, err)
		}
		sf.InstrumentPriority()
		if err := os.WriteFile(path, []byte(sf.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printStats(s *core.Schedule, elapsed time.Duration) {
	g := s.Graph
	fmt.Fprintf(os.Stderr, "jobs: %d  dependencies: %d  shortcuts removed: %d\n",
		g.NumNodes(), g.NumArcs(), len(s.Decomposition.Shortcuts))
	families := map[string]int{}
	bip := 0
	for _, cs := range s.Components {
		families[cs.Family.String()]++
		if cs.Comp.Bipartite {
			bip++
		}
	}
	fmt.Fprintf(os.Stderr, "components: %d (%d via bipartite fast path) by family: %v\n",
		len(s.Components), bip, families)
	fmt.Fprintf(os.Stderr, "scheduling time: %v\n", elapsed)
}
