// Command benchjson converts `go test -bench` text output into JSON so
// benchmark runs can be archived and diffed as machine-readable
// trajectories (make bench-sim pipes the kernel benchmarks through it
// into BENCH_sim.json).
//
// Each benchmark result line
//
//	BenchmarkRunKernel/airsn/prio-4  16413  72685 ns/op  13758 reps/s  0 B/op  0 allocs/op
//
// becomes one entry with the trailing -GOMAXPROCS stripped into its own
// field and every value/unit pair (including custom b.ReportMetric
// units) collected into a metrics map. The goos/goarch/pkg/cpu header
// lines are captured once; PASS/ok trailers and unrelated output are
// ignored, so the full `go test` stream can be piped in unfiltered.
//
// -assert-zero-allocs RE exits nonzero if any benchmark whose name
// matches RE reports allocs/op > 0; CI uses it to enforce the
// replication kernel's zero-alloc steady state on every PR.
// -assert-zero-bytes RE is the same gate on B/op — stricter than
// allocs/op alone, since amortized slice regrowth can report 0
// allocs/op (the allocation count rounds down) while still moving
// kilobytes per op.
//
// -assert-ns-trend FILE exits nonzero if any benchmark present in both
// the run and the baseline JSON (a previous benchjson output, e.g. the
// checked-in BENCH_sim.json) reports more than -ns-tolerance times its
// baseline ns/op. Unlike the allocs gates this is a wall-clock
// assertion, so the default tolerance (1.15) leaves room for machine
// noise while still catching real regressions; benchmarks only in the
// baseline are ignored, letting a smoke run assert a subset.
//
// -assert-allocs-baseline FILE exits nonzero if any benchmark present
// in the baseline JSON (a previous benchjson output) is missing from
// the run or reports more than -allocs-tolerance times its baseline
// allocs/op; make bench-core uses it to pin the parse→schedule
// allocation profile of the frozen dag core.
//
// Usage:
//
//	go test ./internal/sim -bench . -benchmem | benchjson [-o out.json]
//	        [-assert-zero-allocs 'RunKernel/'] [-assert-zero-bytes 'RunKernel/']
//	        [-assert-allocs-baseline baseline.json [-allocs-tolerance 1.1]]
//	        [-assert-ns-trend BENCH_sim.json [-ns-tolerance 1.15]]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix, e.g. "RunKernel/airsn/prio".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 0 if absent.
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: ns/op, B/op, allocs/op, MB/s, and any
	// custom b.ReportMetric units such as reps/s.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON document: the run's platform header plus every
// benchmark in input order.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, returning ok=false for
// anything that is not one.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	// Name, iterations, and at least one value/unit pair.
	if len(f) < 4 || len(f)%2 != 0 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if name == "" || !(name[0] >= 'A' && name[0] <= 'Z') {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || iters <= 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil && procs > 0 {
			b.Name, b.Procs = name[:i], procs
		}
	}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// parse reads a `go test -bench` stream into a Report.
func parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// assertZeroAllocs returns an error naming every benchmark matching re
// that reports allocs/op > 0.
func assertZeroAllocs(rep Report, re *regexp.Regexp) error {
	var bad []string
	for _, b := range rep.Benchmarks {
		if re.MatchString(b.Name) && b.Metrics["allocs/op"] > 0 {
			bad = append(bad, fmt.Sprintf("%s: %g allocs/op", b.Name, b.Metrics["allocs/op"]))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmarks allocate in steady state:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// assertZeroBytes returns an error naming every benchmark matching re
// that reports B/op > 0. It exists separately from assertZeroAllocs
// because testing counts the two independently: a once-per-many-ops
// slice regrowth can round to 0 allocs/op while its bytes stay visible
// in B/op.
func assertZeroBytes(rep Report, re *regexp.Regexp) error {
	var bad []string
	for _, b := range rep.Benchmarks {
		if re.MatchString(b.Name) && b.Metrics["B/op"] > 0 {
			bad = append(bad, fmt.Sprintf("%s: %g B/op", b.Name, b.Metrics["B/op"]))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmarks move bytes in steady state:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// assertNsTrend compares the report's ns/op against a baseline Report:
// every benchmark present in both must not exceed tolerance times its
// baseline ns/op. Benchmarks only in the baseline are skipped — smoke
// runs assert the subset they measure — and a benchmark without ns/op
// on either side is ignored.
func assertNsTrend(rep Report, baselinePath string, tolerance float64) error {
	f, err := os.Open(baselinePath)
	if err != nil {
		return fmt.Errorf("-assert-ns-trend: %w", err)
	}
	defer f.Close()
	var base Report
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("-assert-ns-trend: parse %s: %w", baselinePath, err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	var bad []string
	for _, got := range rep.Benchmarks {
		want, ok := baseline[got.Name]
		if !ok {
			continue
		}
		ns, haveNs := got.Metrics["ns/op"]
		baseNs, haveBase := want.Metrics["ns/op"]
		if !haveNs || !haveBase || baseNs <= 0 {
			continue
		}
		if limit := baseNs * tolerance; ns > limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (limit %.0f, +%.0f%%)",
				got.Name, ns, baseNs, limit, (ns/baseNs-1)*100))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("ns/op regressed against %s:\n  %s", baselinePath, strings.Join(bad, "\n  "))
	}
	return nil
}

// assertAllocsBaseline compares the report's allocs/op against a
// checked-in baseline Report (a previous benchjson output): every
// benchmark present in the baseline must appear in the report and must
// not allocate more than tolerance times its baseline allocs/op.
// allocs/op is the one benchmark metric that is deterministic for a
// fixed workload, so the gate needs no statistical slack beyond the
// tolerance — ns/op and derived throughputs are reported but never
// asserted.
func assertAllocsBaseline(rep Report, baselinePath string, tolerance float64) error {
	f, err := os.Open(baselinePath)
	if err != nil {
		return fmt.Errorf("-assert-allocs-baseline: %w", err)
	}
	defer f.Close()
	var base Report
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		return fmt.Errorf("-assert-allocs-baseline: parse %s: %w", baselinePath, err)
	}
	current := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		current[b.Name] = b
	}
	var bad []string
	for _, want := range base.Benchmarks {
		got, ok := current[want.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: in baseline but not in this run", want.Name))
			continue
		}
		limit := want.Metrics["allocs/op"] * tolerance
		if got.Metrics["allocs/op"] > limit {
			bad = append(bad, fmt.Sprintf("%s: %g allocs/op, baseline %g (limit %.0f)",
				want.Name, got.Metrics["allocs/op"], want.Metrics["allocs/op"], limit))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("allocs/op regressed against %s:\n  %s", baselinePath, strings.Join(bad, "\n  "))
	}
	return nil
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON here instead of stdout")
	zeroRE := fs.String("assert-zero-allocs", "", "fail if a benchmark matching this regexp reports allocs/op > 0")
	zeroBytesRE := fs.String("assert-zero-bytes", "", "fail if a benchmark matching this regexp reports B/op > 0")
	baseline := fs.String("assert-allocs-baseline", "", "fail if allocs/op regresses against this baseline JSON (a previous benchjson output)")
	tolerance := fs.Float64("allocs-tolerance", 1.10, "allowed allocs/op growth factor for -assert-allocs-baseline")
	nsTrend := fs.String("assert-ns-trend", "", "fail if ns/op regresses against this baseline JSON (a previous benchjson output)")
	nsTolerance := fs.Float64("ns-tolerance", 1.15, "allowed ns/op growth factor for -assert-ns-trend")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one input file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if *zeroRE != "" {
		re, err := regexp.Compile(*zeroRE)
		if err != nil {
			return fmt.Errorf("-assert-zero-allocs: %w", err)
		}
		if err := assertZeroAllocs(rep, re); err != nil {
			return err
		}
	}
	if *zeroBytesRE != "" {
		re, err := regexp.Compile(*zeroBytesRE)
		if err != nil {
			return fmt.Errorf("-assert-zero-bytes: %w", err)
		}
		if err := assertZeroBytes(rep, re); err != nil {
			return err
		}
	}
	if *baseline != "" {
		if err := assertAllocsBaseline(rep, *baseline, *tolerance); err != nil {
			return err
		}
	}
	if *nsTrend != "" {
		return assertNsTrend(rep, *nsTrend, *nsTolerance)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
