package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkRunKernel/airsn/prio-4         	   16413	     72685 ns/op	     13758 reps/s	       0 B/op	       0 allocs/op
BenchmarkRunKernel/sdss/fifo-4          	     168	   7040813 ns/op	       142.0 reps/s	    5120 B/op	       0 allocs/op
BenchmarkEngineGrid-4                   	     100	  11873170 ns/op	     24256 reps/s	   48212 B/op	     290 allocs/op
--- BENCH: some stray output
BenchmarkNoMetrics-4 12
PASS
ok  	repro/internal/sim	9.254s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro/internal/sim" {
		t.Fatalf("header = %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Name != "RunKernel/airsn/prio" || b.Procs != 4 || b.Iterations != 16413 {
		t.Fatalf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 72685, "reps/s": 13758, "B/op": 0, "allocs/op": 0,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("%s = %g, want %g", unit, got, want)
		}
	}
	if g := rep.Benchmarks[2]; g.Name != "EngineGrid" || g.Metrics["allocs/op"] != 290 {
		t.Fatalf("grid benchmark = %+v", g)
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro/internal/sim	9.254s",
		"Benchmark",                      // no name
		"Benchmarklower 10 5 ns/op",      // lowercase start: not a go benchmark
		"BenchmarkX 0 5 ns/op",           // zero iterations
		"BenchmarkX ten 5 ns/op",         // bad iteration count
		"BenchmarkX 10 nope ns/op",       // bad value
		"BenchmarkX 10 5",                // dangling value without unit
		"--- BENCH: BenchmarkX 10 trace", // indented test chatter
	} {
		if b, ok := parseLine(line); ok {
			t.Fatalf("parseLine(%q) accepted: %+v", line, b)
		}
	}
}

func TestAssertZeroAllocs(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-assert-zero-allocs", "RunKernel/"}, strings.NewReader(sample), &out)
	if err != nil {
		t.Fatalf("kernel benchmarks are zero-alloc, got %v", err)
	}
	out.Reset()
	err = run([]string{"-assert-zero-allocs", "EngineGrid"}, strings.NewReader(sample), &out)
	if err == nil || !strings.Contains(err.Error(), "EngineGrid") {
		t.Fatalf("EngineGrid allocates, want named failure, got %v", err)
	}
	// The JSON is still written before the assertion fails.
	if !strings.Contains(out.String(), "\"benchmarks\"") {
		t.Fatal("JSON not emitted alongside assertion failure")
	}
}

func TestAssertAllocsBaseline(t *testing.T) {
	// Build a baseline from the sample itself: same allocs/op passes at
	// any tolerance >= 1.
	base := filepath.Join(t.TempDir(), "baseline.json")
	var out strings.Builder
	if err := run([]string{"-o", base}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-assert-allocs-baseline", base}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("identical run regressed against its own baseline: %v", err)
	}
	// A run allocating beyond tolerance fails, naming the benchmark.
	regressed := strings.ReplaceAll(sample, "290 allocs/op", "9999 allocs/op")
	if regressed == sample {
		t.Fatal("sample replace missed")
	}
	err := run([]string{"-assert-allocs-baseline", base}, strings.NewReader(regressed), &out)
	if err == nil || !strings.Contains(err.Error(), "EngineGrid") {
		t.Fatalf("allocs regression passed the baseline gate: %v", err)
	}
	// A benchmark disappearing from the run fails too.
	missing := strings.ReplaceAll(sample, "BenchmarkEngineGrid", "BenchmarkRenamedGrid")
	err = run([]string{"-assert-allocs-baseline", base}, strings.NewReader(missing), &out)
	if err == nil || !strings.Contains(err.Error(), "not in this run") {
		t.Fatalf("missing benchmark passed the baseline gate: %v", err)
	}
	// Bad baseline paths and contents are reported.
	if err := run([]string{"-assert-allocs-baseline", filepath.Join(t.TempDir(), "nope.json")}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestAssertZeroBytes(t *testing.T) {
	var out strings.Builder
	// The sdss/fifo line moves 5120 B/op at 0 allocs/op — exactly the
	// amortized-regrowth shape the bytes gate exists to catch and the
	// allocs gate misses.
	if err := run([]string{"-assert-zero-allocs", "RunKernel/"}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("allocs gate should pass (both kernels report 0 allocs/op): %v", err)
	}
	err := run([]string{"-assert-zero-bytes", "RunKernel/"}, strings.NewReader(sample), &out)
	if err == nil || !strings.Contains(err.Error(), "sdss/fifo") || !strings.Contains(err.Error(), "5120 B/op") {
		t.Fatalf("bytes gate missed the regrowth: %v", err)
	}
	if err := run([]string{"-assert-zero-bytes", "RunKernel/airsn"}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("clean benchmark failed the bytes gate: %v", err)
	}
	if err := run([]string{"-assert-zero-bytes", "("}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

func TestAssertNsTrend(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	var out strings.Builder
	if err := run([]string{"-o", base}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-assert-ns-trend", base}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("identical run regressed against its own baseline: %v", err)
	}
	// +10% stays inside the default 1.15 tolerance.
	slight := strings.ReplaceAll(sample, "72685 ns/op", "79900 ns/op")
	if err := run([]string{"-assert-ns-trend", base}, strings.NewReader(slight), &out); err != nil {
		t.Fatalf("+10%% failed the default 15%% tolerance: %v", err)
	}
	// +20% fails, naming the benchmark; a looser tolerance re-admits it.
	regressed := strings.ReplaceAll(sample, "72685 ns/op", "87300 ns/op")
	err := run([]string{"-assert-ns-trend", base}, strings.NewReader(regressed), &out)
	if err == nil || !strings.Contains(err.Error(), "airsn/prio") {
		t.Fatalf("+20%% passed the trend gate: %v", err)
	}
	if err := run([]string{"-assert-ns-trend", base, "-ns-tolerance", "1.3"}, strings.NewReader(regressed), &out); err != nil {
		t.Fatalf("+20%% failed a 30%% tolerance: %v", err)
	}
	// A smoke run measuring a subset asserts only that subset.
	subset := strings.Join([]string{
		"BenchmarkRunKernel/airsn/prio-4 100 72685 ns/op 0 B/op 0 allocs/op",
		"BenchmarkNewToBaseline-4 100 5 ns/op 0 B/op 0 allocs/op",
	}, "\n") + "\n"
	if err := run([]string{"-assert-ns-trend", base}, strings.NewReader(subset), &out); err != nil {
		t.Fatalf("subset run failed the trend gate: %v", err)
	}
	// Bad baselines are reported.
	if err := run([]string{"-assert-ns-trend", filepath.Join(t.TempDir(), "nope.json")}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-o", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("-o wrote to stdout too: %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 || rep.Benchmarks[0].Metrics["reps/s"] != 13758 {
		t.Fatalf("round-trip = %+v", rep)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("benchmark-free input accepted")
	}
	if err := run([]string{"-assert-zero-allocs", "("}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("bad regexp accepted")
	}
	if err := run([]string{"a", "b"}, strings.NewReader(sample), &out); err == nil {
		t.Fatal("two input files accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.txt")}, nil, &out); err == nil {
		t.Fatal("missing input file accepted")
	}
}
