package main

import (
	"strings"
	"testing"
)

func TestRunScaled(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "50", "-dags", "airsn,sdss"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"airsn/50", "sdss/50", "components", "845s / 1.3GB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunAblationsAgreeOnComponentCount(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-scale", "100", "-dags", "airsn"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "100", "-dags", "airsn", "-naive", "-nofastpath"}, &b); err != nil {
		t.Fatal(err)
	}
	// component counts (column 6) must match between configurations
	fa := strings.Fields(strings.Split(a.String(), "\n")[1])
	fb := strings.Fields(strings.Split(b.String(), "\n")[1])
	if fa[5] != fb[5] {
		t.Fatalf("component counts differ: %s vs %s", fa[5], fb[5])
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dags", "bogus"}, &out); err == nil {
		t.Fatal("unknown dag accepted")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:             "512B",
		2048:            "2.0KB",
		3 << 20:         "3.0MB",
		1 << 31:         "2.00GB",
		5*1<<20 + 1<<19: "5.5MB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
