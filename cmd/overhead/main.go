// Command overhead regenerates the Section 3.6 measurements: the
// running time and memory consumption of the prio scheduling pipeline on
// the four scientific dags (the paper reports, on 2006 hardware: AIRSN
// <1 s / 2 MB, Inspiral 16 s / 21 MB, Montage 8 s / 104 MB, SDSS 845 s /
// 1.3 GB). Absolute numbers differ on modern hardware; the expected
// shape — SDSS slowest and hungriest, AIRSN trivial — is preserved.
//
// Usage:
//
//	overhead [-scale 1] [-dags airsn,inspiral,montage,sdss] [-naive]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("overhead", flag.ContinueOnError)
	scale := fs.Int("scale", 1, "divide the paper workload size by this factor")
	list := fs.String("dags", strings.Join(workloads.Names(), ","), "comma list of workloads")
	naive := fs.Bool("naive", false, "use the naive Combine implementation")
	noFast := fs.Bool("nofastpath", false, "disable the bipartite decomposition fast path (Section 3.5 ablation)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := core.Options{}
	if *naive {
		opts.Combine = core.CombineNaive
	}
	opts.Decompose.DisableFastPath = *noFast

	fmt.Fprintf(w, "%-10s %9s %9s %12s %12s %11s %s\n",
		"dag", "jobs", "arcs", "time", "alloc", "components", "paper(2006)")
	paper := map[string]string{
		"airsn":    "<1s / 2MB",
		"inspiral": "16s / 21MB",
		"montage":  "8s / 104MB",
		"sdss":     "845s / 1.3GB",
	}
	for _, name := range strings.Split(*list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, label, err := cli.LoadDag(name, *scale)
		if err != nil {
			return err
		}
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		s := core.PrioritizeOpts(g, opts)
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		alloc := after.TotalAlloc - before.TotalAlloc
		fmt.Fprintf(w, "%-10s %9d %9d %12v %12s %11d %s\n",
			label, g.NumNodes(), g.NumArcs(), elapsed.Round(time.Millisecond),
			formatBytes(alloc), len(s.Components), paper[name])
	}
	return nil
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
