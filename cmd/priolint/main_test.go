package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestDriverFindsViolations runs the real driver (go list, export data,
// type-checking and all) over the bad fixture package and checks the
// exit code and diagnostics.
func TestDriverFindsViolations(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./testdata/src/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"mapiterorder: append to keys",
		"mapiterorder: output written",
		"rngsource: rand.Intn",
		"testdata/src/bad/bad.go:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDriverCleanPackage: the analysis framework itself must be clean.
func TestDriverCleanPackage(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"repro/internal/analysis/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected output:\n%s", stdout.String())
	}
}

// TestDriverPureCross: a //prio:pure entry point that is clean in
// isolation but reaches a clock read one package down must be reported
// with the whole chain — the facts mechanism crossing a package
// boundary through the real driver, not just analysistest.
func TestDriverPureCross(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./testdata/src/purecross/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	want := "purity: Evaluate is annotated //prio:pure but calls inner.Stamp, which reads the clock (time.Now) at inner.go:"
	if !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
	if strings.Contains(out, "Stamp is annotated") || strings.Contains(out, "Clean is annotated") {
		t.Errorf("unexpected diagnostics (Stamp is unannotated, Clean is pure):\n%s", out)
	}
}

// TestDriverFormatJSON checks the machine-readable output CI archives:
// every finding carries file/line/col/analyzer/message, and the text
// and json runs agree on the finding count.
func TestDriverFormatJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-format", "json", "./testdata/src/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var findings []finding
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("json run reported no findings")
	}
	analyzers := make(map[string]bool)
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
		analyzers[f.Analyzer] = true
	}
	if !analyzers["mapiterorder"] || !analyzers["rngsource"] {
		t.Errorf("expected mapiterorder and rngsource findings, got %v", analyzers)
	}

	var text strings.Builder
	if code := run([]string{"./testdata/src/bad"}, &text, &stderr); code != 1 {
		t.Fatalf("text run exit code = %d, want 1", code)
	}
	if lines := strings.Count(strings.TrimSpace(text.String()), "\n") + 1; lines != len(findings) {
		t.Errorf("text run has %d findings, json run has %d", lines, len(findings))
	}

	stdout.Reset()
	if code := run([]string{"-format", "json", "./testdata/src/noallocclean"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean json run exit code = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean json run = %q, want []", got)
	}
}

// TestDriverDeterministic: two identical runs over packages with
// findings from several analyzers (including the interprocedural ones)
// must produce byte-identical output — the property that makes the
// lint gate diffable in CI.
func TestDriverDeterministic(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		var first string
		for i := 0; i < 2; i++ {
			var stdout, stderr strings.Builder
			code := run([]string{"-format", format, "./testdata/src/..."}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("%s run %d: exit code = %d, want 1\nstderr:\n%s", format, i, code, stderr.String())
			}
			if i == 0 {
				first = stdout.String()
			} else if stdout.String() != first {
				t.Errorf("%s output differs between identical runs:\n--- first\n%s--- second\n%s", format, first, stdout.String())
			}
		}
	}
}

// TestDriverInjectMarker pins the sed targets of CI's injection steps:
// if a marker line disappears from its fixture, the CI step would
// silently inject nothing and the anti-vacuousness guard would stop
// guarding.
func TestDriverInjectMarker(t *testing.T) {
	for file, marker := range map[string]string{
		"testdata/src/noallocclean/noallocclean.go":     "// INJECT: allocation goes here",
		"testdata/src/goroleakclean/goroleakclean.go":   "// INJECT: leaked goroutine goes here",
		"testdata/src/chanboundclean/chanboundclean.go": "// INJECT: unbounded send goes here",
		"testdata/src/respdetclean/respdetclean.go":     "// INJECT: clock read goes here",
		"testdata/src/bceclean/bceclean.go":             "// INJECT: unprovable index goes here",
		"testdata/src/devirtclean/devirtclean.go":       "// INJECT: interface call through a variable goes here",
		// Not a fixture: CI also rehearses the injection against the
		// real kernel, turning the ranker hook's local pin into a call
		// through the mutable package-level hook that the compiler
		// cannot devirtualize.
		"../../internal/sim/kernelfast.go": "// INJECT: ranker call through the mutable hook goes here",
	} {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), marker) {
			t.Errorf("%s lost its %q marker (ci.yml seds it)", file, marker)
		}
	}
}

// TestAnalyzersDocumented mirrors the serving layer's
// TestRoutesDocumented: every analyzer registered in the suite must
// have an "(analyzer <name>)" section in internal/analysis/doc.go, so
// the suite and its documentation cannot drift apart.
func TestAnalyzersDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../internal/analysis/doc.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range suite {
		if !strings.Contains(string(doc), "(analyzer "+a.Name+")") {
			t.Errorf("analyzer %s is registered in the suite but has no \"(analyzer %s)\" section in internal/analysis/doc.go", a.Name, a.Name)
		}
	}
}

// TestDriverOnlyFilter restricts the suite and rejects unknown names.
func TestDriverOnlyFilter(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "rngsource", "./testdata/src/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if out := stdout.String(); strings.Contains(out, "mapiterorder") || !strings.Contains(out, "rngsource") {
		t.Errorf("-only rngsource output wrong:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "nosuch", "./testdata/src/bad"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
}
