package main

import (
	"strings"
	"testing"
)

// TestDriverFindsViolations runs the real driver (go list, export data,
// type-checking and all) over the bad fixture package and checks the
// exit code and diagnostics.
func TestDriverFindsViolations(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"./testdata/src/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"mapiterorder: append to keys",
		"mapiterorder: output written",
		"rngsource: rand.Intn",
		"testdata/src/bad/bad.go:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDriverCleanPackage: the analysis framework itself must be clean.
func TestDriverCleanPackage(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"repro/internal/analysis/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected output:\n%s", stdout.String())
	}
}

// TestDriverOnlyFilter restricts the suite and rejects unknown names.
func TestDriverOnlyFilter(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-only", "rngsource", "./testdata/src/bad"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if out := stdout.String(); strings.Contains(out, "mapiterorder") || !strings.Contains(out, "rngsource") {
		t.Errorf("-only rngsource output wrong:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "nosuch", "./testdata/src/bad"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
}
