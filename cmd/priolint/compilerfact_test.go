package main

import (
	"encoding/json"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis/bce"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/inline"
	"repro/internal/analysis/load"
	"repro/internal/analysis/pragma"
)

// TestDriverExitCodes pins the CLI contract scripts depend on: 0 for a
// clean tree, 1 when any analyzer reports a finding, 2 for usage and
// load errors. A load failure must not masquerade as a clean run.
func TestDriverExitCodes(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"./testdata/src/bceclean"}, &stdout, &stderr); code != 0 {
		t.Errorf("clean package: exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./testdata/src/bad"}, &stdout, &stderr); code != 1 {
		t.Errorf("findings: exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./testdata/src/nosuchpackage"}, &stdout, &stderr); code != 2 {
		t.Errorf("load error: exit code = %d, want 2\nstdout:\n%s", code, stdout.String())
	} else if !strings.Contains(stderr.String(), "priolint:") {
		t.Errorf("load error: stderr missing priolint prefix:\n%s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-format", "yaml", "./testdata/src/bad"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad format: exit code = %d, want 2", code)
	}
}

// TestCompilerFactCensus: every //prio:nobce and //prio:inline site in
// the kernel packages must be covered by a compiler-fact proof — the
// compiler emits exactly one inline decision per compiled function, so
// FuncFacts.Compiled doubles as the receipt that the annotated file was
// part of the instrumented build. An annotation the build never saw is
// a contract nobody is enforcing.
func TestCompilerFactCensus(t *testing.T) {
	pkgs, err := load.Load("", "repro/internal/sim", "repro/internal/bitset")
	if err != nil {
		t.Fatal(err)
	}
	nonMains, mains := compileDirs(pkgs)
	cf, err := compilerfact.Run("", nonMains, mains)
	if err != nil {
		t.Fatal(err)
	}
	set := new(facts.Set)
	cf.AttachFuncFacts(pkgs, set)

	sites := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if !pragma.Has(fd.Doc, bce.Annotation) && !pragma.Has(fd.Doc, inline.Annotation) {
					continue
				}
				sites++
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					t.Errorf("%s: annotated function %s has no definition object", pkg.ImportPath, fd.Name.Name)
					continue
				}
				ff := new(compilerfact.FuncFacts)
				if !set.ImportObjectFact(obj, ff) || !ff.Compiled {
					pos := pkg.Fset.Position(fd.Name.Pos())
					t.Errorf("%s:%d: %s is annotated but the compiler-fact build emitted no record for it — the contract is unproved", pos.Filename, pos.Line, fd.Name.Name)
				}
			}
		}
	}
	if sites < 8 {
		t.Errorf("census found only %d annotated sites in internal/sim and internal/bitset — the kernel annotations have been lost", sites)
	}
}

// TestCompilerFactJSONDeterministic: the compiler-fact analyzers must
// produce byte-identical -format json output across identical runs —
// their findings come from parsed build output, and any nondeterminism
// there (map iteration over facts, unsorted positions) would make the
// lint gate undiffable. The fixture dirs are the analyzers' own
// analysistest packages, which carry known violations for all five.
func TestCompilerFactJSONDeterministic(t *testing.T) {
	args := []string{
		"-format", "json",
		"-only", "bce,devirt,escapecheck,inline,pragmacheck",
		"../../internal/analysis/bce/testdata/src/a",
		"../../internal/analysis/devirt/testdata/src/a",
		"../../internal/analysis/escapecheck/testdata/src/a",
		"../../internal/analysis/inline/testdata/src/a",
		"../../internal/analysis/pragmacheck/testdata/src/a",
	}
	var first string
	for i := 0; i < 2; i++ {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Fatalf("run %d: exit code = %d, want 1\nstderr:\n%s", i, code, stderr.String())
		}
		if i == 0 {
			first = stdout.String()
		} else if stdout.String() != first {
			t.Fatalf("json output differs between identical runs:\n--- first\n%s--- second\n%s", first, stdout.String())
		}
	}

	var findings []finding
	if err := json.Unmarshal([]byte(first), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v", err)
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		seen[f.Analyzer] = true
	}
	for _, want := range []string{"bce", "devirt", "escapecheck", "inline", "pragmacheck"} {
		if !seen[want] {
			t.Errorf("no %s finding over its own violation fixture (got %v)", want, seen)
		}
	}
}
