// Command priolint runs the repository's invariant analyzers (see
// repro/internal/analysis) over a set of packages, `go vet`-style.
//
// Usage:
//
//	priolint [-only a,b] [-format text|json] [-debug-callgraph] [packages]
//
// With no package arguments it analyzes ./... . Test files are included.
// The exit code is 0 when the tree is clean, 1 when any diagnostic was
// reported, and 2 on usage or load errors.
//
// The suite has two kinds of analyzers. Package analyzers run once per
// package, in dependency order, sharing a fact store — purity exports
// an Impure fact for every effectful function it sees, so a violation
// deep in a dependency surfaces at the annotated entry point with the
// whole call chain. Program analyzers (noalloc, nestedlock, goroleak,
// ctxflow, chanbound, respdet, bce, inline, devirt, escapecheck) run
// once over all loaded packages together with the whole-program call
// graph. Analyzers that consume compiler facts (bce, inline, devirt,
// escapecheck) share a single instrumented `go build` of the loaded
// tree — the compiler runs at most once per priolint invocation.
// Interface calls resolve only to implementations loaded from source,
// so run the tool over ./... (the default) for the contracts to be
// proved rather than spot-checked.
//
// -format json emits the findings as a JSON array of
// {file, line, col, analyzer, message, path} objects, where path is
// the call chain justifying an interprocedural finding (empty
// otherwise). -debug-callgraph dumps every call edge before analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/bce"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/chanbound"
	"repro/internal/analysis/compilerfact"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/devirt"
	"repro/internal/analysis/errpropagation"
	"repro/internal/analysis/escapecheck"
	"repro/internal/analysis/facts"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/inline"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockedfield"
	"repro/internal/analysis/mapiterorder"
	"repro/internal/analysis/nestedlock"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/pragmacheck"
	"repro/internal/analysis/purity"
	"repro/internal/analysis/respdet"
	"repro/internal/analysis/rngsource"
)

// suite is every analyzer priolint knows, in reporting order.
var suite = []*analysis.Analyzer{
	bce.Analyzer,
	chanbound.Analyzer,
	ctxflow.Analyzer,
	devirt.Analyzer,
	errpropagation.Analyzer,
	escapecheck.Analyzer,
	goroleak.Analyzer,
	inline.Analyzer,
	lockedfield.Analyzer,
	mapiterorder.Analyzer,
	nestedlock.Analyzer,
	noalloc.Analyzer,
	pragmacheck.Analyzer,
	purity.Analyzer,
	respdet.Analyzer,
	rngsource.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is one diagnostic, in the shape -format json emits.
type finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Path     []string `json:"path,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("priolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	format := fs.String("format", "text", "output format: text or json")
	debugCG := fs.Bool("debug-callgraph", false, "dump every call-graph edge before analyzing")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: priolint [-only a,b] [-format text|json] [-debug-callgraph] [packages]")
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range suite {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "priolint: unknown format %q (want text or json)\n", *format)
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "priolint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Load returns the packages in stable dependency order; package
	// passes rely on it for fact propagation, and it makes the whole
	// run's output independent of pattern order.
	pkgs, err := load.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "priolint:", err)
		return 2
	}

	var pkgAnalyzers, progAnalyzers []*analysis.Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			progAnalyzers = append(progAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	var graph *callgraph.Graph
	if len(progAnalyzers) > 0 || *debugCG {
		graph = callgraph.Build(pkgs)
	}

	// Compiler facts are computed at most once per invocation and shared
	// by every analyzer that asks for them: one `go build -gcflags=-m=2
	// -d=ssa/check_bce` over the loaded tree, not one per analyzer.
	var compiler *compilerfact.Facts
	needCompiler := false
	for _, a := range progAnalyzers {
		if a.NeedsCompilerFacts {
			needCompiler = true
		}
	}
	if needCompiler && len(pkgs) > 0 {
		nonMains, mains := compileDirs(pkgs)
		cf, err := compilerfact.Run("", nonMains, mains)
		if err != nil {
			fmt.Fprintln(stderr, "priolint:", err)
			return 2
		}
		compiler = cf
	}
	if *debugCG && len(pkgs) > 0 {
		for _, line := range graph.DebugDump(pkgs[0].Fset) {
			fmt.Fprintln(stdout, line)
		}
	}

	factSet := new(facts.Set)
	if compiler != nil {
		compiler.AttachFuncFacts(pkgs, factSet)
	}
	seen := make(map[string]bool)
	var findings []finding

	for _, pkg := range pkgs {
		for _, a := range pkgAnalyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     factSet,
				Report:    reporter(pkg.Fset.Position, a.Name, seen, &findings),
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "priolint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
		}
	}
	for _, a := range progAnalyzers {
		if len(pkgs) == 0 {
			break
		}
		pp := &analysis.ProgramPass{
			Analyzer: a,
			Fset:     pkgs[0].Fset,
			Pkgs:     pkgs,
			Graph:    graph,
			Facts:    factSet,
			Compiler: compiler,
			Report:   reporter(pkgs[0].Fset.Position, a.Name, seen, &findings),
		}
		if err := a.RunProgram(pp); err != nil {
			fmt.Fprintf(stderr, "priolint: %s: %v\n", a.Name, err)
			return 2
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{} // emit [], not null
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "priolint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "priolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// compileDirs maps the loaded packages to the directory lists the
// compiler-fact build takes, split into non-mains and mains (a main
// build needs -o pointed at scratch space). Directories are passed
// instead of import paths because the loader's test variants
// ("p [p.test]", "p_test") share the base package's directory — the
// dedup collapses them to one compile of the non-test sources. A dir
// counts as a main if any package in it is one.
func compileDirs(pkgs []*load.Package) (nonMains, mains []string) {
	isMain := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.Dir != "" && pkg.Types.Name() == "main" {
			isMain[pkg.Dir] = true
		}
	}
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.Dir == "" || seen[pkg.Dir] {
			continue
		}
		seen[pkg.Dir] = true
		if isMain[pkg.Dir] {
			mains = append(mains, pkg.Dir)
		} else {
			nonMains = append(nonMains, pkg.Dir)
		}
	}
	return nonMains, mains
}

// reporter builds a Report callback that records deduplicated findings
// (a package and its test variant share files; program analyzers may
// rediscover one site from several roots' shared subgraphs).
func reporter(position func(token.Pos) token.Position, name string, seen map[string]bool, findings *[]finding) func(analysis.Diagnostic) {
	return func(d analysis.Diagnostic) {
		pos := position(d.Pos)
		f := finding{
			File: relPath(pos.Filename), Line: pos.Line, Col: pos.Column,
			Analyzer: name, Message: d.Message, Path: d.Path,
		}
		key := fmt.Sprintf("%s:%d:%d:%s:%s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		if !seen[key] {
			seen[key] = true
			*findings = append(*findings, f)
		}
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
