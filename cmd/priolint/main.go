// Command priolint runs the repository's invariant analyzers (see
// repro/internal/analysis) over a set of packages, `go vet`-style.
//
// Usage:
//
//	priolint [-only a,b] [packages]
//
// With no package arguments it analyzes ./... . Test files are included.
// The exit code is 0 when the tree is clean, 1 when any diagnostic was
// reported, and 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/errpropagation"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockedfield"
	"repro/internal/analysis/mapiterorder"
	"repro/internal/analysis/rngsource"
)

// suite is every analyzer priolint knows, in reporting order.
var suite = []*analysis.Analyzer{
	errpropagation.Analyzer,
	lockedfield.Analyzer,
	mapiterorder.Analyzer,
	rngsource.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("priolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: priolint [-only a,b] [packages]")
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range suite {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "priolint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "priolint:", err)
		return 2
	}

	type finding struct {
		file      string
		line, col int
		analyzer  string
		message   string
	}
	seen := make(map[finding]bool)
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					f := finding{relPath(pos.Filename), pos.Line, pos.Column, a.Name, d.Message}
					// A package and its test variant share files; keep
					// one copy of diagnostics from the shared ones.
					if !seen[f] {
						seen[f] = true
						findings = append(findings, f)
					}
				},
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "priolint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.file, f.line, f.col, f.analyzer, f.message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "priolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
