// Package goroleakclean is the anti-vacuousness fixture for the
// goroleak analyzer: Sum launches properly joined goroutines, so
// priolint passes on this package as checked in. CI's injection step
// replaces the INJECT marker below with an unjoined goroutine launch
// and asserts priolint fails — proving the analyzer still has teeth.
// TestDriverInjectMarker pins the marker so the sed in
// .github/workflows/ci.yml cannot rot silently.
package goroleakclean

import "sync"

// Sum totals every part with one joined worker per part.
func Sum(parts [][]int) int {
	totals := make([]int, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range p {
				totals[i] += v
			}
		}()
	}
	wg.Wait()
	// INJECT: leaked goroutine goes here
	sum := 0
	for _, t := range totals {
		sum += t
	}
	return sum
}
