// Package bceclean is the anti-vacuousness fixture for the bce
// analyzer: Fold pins the slice length and masks every index, so the
// compiler eliminates every bounds check and priolint passes on this
// package as checked in. CI's "priolint catches injected bounds check"
// step replaces the INJECT marker below with an index no prover can
// discharge and asserts priolint fails — proving the analyzer still
// reads real compiler output, not just the absence of findings.
// TestDriverInjectMarker pins the marker so the sed in
// .github/workflows/ci.yml cannot rot silently.
package bceclean

//prio:nobce
func Fold(xs []uint64) uint64 {
	if len(xs) != 64 {
		return 0
	}
	var acc uint64
	for i := 0; i < 64; i++ {
		acc ^= xs[i&63]
		// INJECT: unprovable index goes here
	}
	return acc
}
