// Package inner is the dependency half of the purecross driver
// fixture: an unannotated helper whose impurity must travel to the
// annotated caller in the parent package via an exported Impure fact,
// not via a diagnostic here.
package inner

import "time"

// Stamp is impure but unannotated: no diagnostic is reported for it,
// only a fact.
func Stamp(x int) int {
	return x + time.Now().Nanosecond()
}

// Double is pure; the caller's use of it must not trip anything.
func Double(x int) int { return 2 * x }
