// Package purecross is the driver-level purity fixture: the annotated
// entry point is clean in isolation, and only analyzing the packages in
// dependency order with a shared fact store reveals that it reaches a
// clock read one package down. The driver test asserts the diagnostic
// names the whole chain.
package purecross

import "repro/cmd/priolint/testdata/src/purecross/inner"

//prio:pure
func Evaluate(x int) int {
	return inner.Stamp(x)
}

//prio:pure
func Clean(x int) int {
	return inner.Double(x)
}
