// Package noallocclean is the anti-vacuousness fixture for the noalloc
// analyzer: Fill is annotated and genuinely allocation-free, so
// priolint passes on this package as checked in. CI's
// "priolint catches injected allocation" step then replaces the
// INJECT marker below with an allocation and asserts priolint fails —
// proving the analyzer still has teeth, not just the absence of
// findings. TestDriverInjectMarker pins the marker so the sed in
// .github/workflows/ci.yml cannot rot silently.
package noallocclean

//prio:noalloc
func Fill(dst []int, v int) int {
	sum := 0
	for i := range dst {
		dst[i] = v
		// INJECT: allocation goes here
		sum += dst[i]
	}
	return sum
}
