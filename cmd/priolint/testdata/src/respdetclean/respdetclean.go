// Package respdetclean is the anti-vacuousness fixture for the respdet
// analyzer: Render is annotated //prio:deterministic and genuinely
// order-free (collect-then-sort), so priolint passes on this package
// as checked in. CI's injection step replaces the INJECT marker below
// with a clock read and asserts priolint fails — proving the analyzer
// still has teeth. TestDriverInjectMarker pins the marker so the sed
// in .github/workflows/ci.yml cannot rot silently.
package respdetclean

import (
	"sort"
	"time"
)

// Timeout is a fixed budget: a call-free use of package time that
// keeps the import available for the CI injection.
const Timeout = 50 * time.Millisecond

// Render returns the canonical (sorted) key listing of scores.
//
//prio:deterministic
func Render(scores map[string]int) []string {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// INJECT: clock read goes here
	return keys
}
