// Package bad is a fixture for the priolint driver test: it contains
// exactly one violation per analyzer that can manifest in a
// self-contained package.
package bad

import (
	"fmt"
	"math/rand"
)

// Keys is nondeterministic: classic mapiterorder violation.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Roll uses the process-global generator: rngsource violation.
func Roll() int {
	return rand.Intn(6)
}

// Print prints in map order: a second mapiterorder violation.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
