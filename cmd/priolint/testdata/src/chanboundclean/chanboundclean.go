// Package chanboundclean is the anti-vacuousness fixture for the
// chanbound analyzer: Handle's only send sits inside a select with a
// default case, so priolint passes on this package as checked in.
// CI's injection step replaces the INJECT marker below with a bare
// send on the unbounded audit channel and asserts priolint fails —
// proving the analyzer still has teeth. TestDriverInjectMarker pins
// the marker so the sed in .github/workflows/ci.yml cannot rot
// silently.
package chanboundclean

import "net/http"

// Server carries a bounded admission semaphore and an unbounded audit
// channel whose sends must stay select-guarded.
type Server struct {
	slots chan struct{}
	audit chan string
}

func NewServer() *Server {
	return &Server{
		slots: make(chan struct{}, 8),
		audit: make(chan string),
	}
}

func (s *Server) Handle(w http.ResponseWriter, r *http.Request) {
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	default:
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	// INJECT: unbounded send goes here
	w.WriteHeader(http.StatusOK)
}
