// Package devirtclean is the anti-vacuousness fixture for the devirt
// analyzer: Score dispatches through a locally pinned interface value
// the compiler devirtualizes, so priolint passes on this package as
// checked in. CI's "priolint catches injected interface call" step
// replaces the INJECT marker below with a call through the mutable
// package-level sink — a call no compiler pass can devirtualize — and
// asserts priolint fails. TestDriverInjectMarker pins the marker so
// the sed in .github/workflows/ci.yml cannot rot silently.
package devirtclean

// policy scores one event; two implementations keep the interface
// honest (a single-implementation interface devirtualizes trivially).
type policy interface{ weight(x int) int }

type flat struct{ k int }

func (f *flat) weight(x int) int { return x * f.k }

type steep struct{}

func (steep) weight(x int) int { return x * x }

// base is package-level so &base allocates nothing inside Score.
var base = flat{k: 2}

// sink is reassigned by Churn, so no call through it can be
// devirtualized — exactly what the injected probe exploits.
var sink policy = &base

// Churn swaps the live implementation; it exists to keep sink's
// dynamic type unprovable at any call site.
func Churn() { sink = steep{} }

//prio:noalloc
func Score(xs []int) int {
	var p policy = &base
	t := 0
	for _, x := range xs {
		t += p.weight(x)
		// INJECT: interface call through a variable goes here
	}
	return t
}
