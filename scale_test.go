package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/workloads"
)

// TestMillionNodePrioritize is the scale gate for the frozen-CSR core:
// Builder→Freeze→Prioritize must complete on synthetic million-node
// dags within a per-node allocation budget. The budget is what makes
// this a regression test rather than a smoke test — the pre-refactor
// pipeline copied adjacency per pass ([][]int in reduce, decompose, and
// the sim's private flattening), which costs several extra allocations
// and hundreds of extra bytes per node; a reappearance of any such copy
// blows the budget immediately.
//
// Two shapes cover the two extremes of the decomposition: a layered
// random dag (few huge components, closure-heavy) and a shared-shape
// TileField (tens of thousands of tiny identical components,
// combine-heavy). Skipped under -short: the two runs take tens of
// seconds at a million nodes.
func TestMillionNodePrioritize(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node scale test skipped in -short mode")
	}
	for _, tc := range []struct {
		name  string
		build func() *dag.Frozen
		// Prioritize-phase budgets, per node.
		maxAllocs, maxBytes float64
	}{
		{
			name:  "layered",
			build: func() *dag.Frozen { return workloads.Layered(rng.New(7), 2000, 500, 3.0/500) },
			// Measured ~1.9 allocs and ~710 B per node at introduction;
			// budgeted with ~2x headroom.
			maxAllocs: 4, maxBytes: 1500,
		},
		{
			name:      "tilefield",
			build:     func() *dag.Frozen { return workloads.TileField(rng.New(11), 20000, 20, 30, 6, true) },
			maxAllocs: 8, maxBytes: 1500,
		},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			g := tc.build()
			buildTime := time.Since(start)
			n := g.NumNodes()
			if n < 1_000_000 {
				t.Fatalf("generator produced %d nodes, want >= 1e6", n)
			}

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start = time.Now()
			s := core.Prioritize(g)
			prioTime := time.Since(start)
			runtime.ReadMemStats(&after)

			allocsPerNode := float64(after.Mallocs-before.Mallocs) / float64(n)
			bytesPerNode := float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
			t.Logf("n=%d m=%d build=%v prioritize=%v (%.2f allocs/node, %.0f B/node)",
				n, g.NumArcs(), buildTime, prioTime, allocsPerNode, bytesPerNode)

			if len(s.Order) != n || len(s.Priority) != n {
				t.Fatalf("schedule covers %d/%d of %d jobs", len(s.Order), len(s.Priority), n)
			}
			if err := core.ValidateExecutionOrder(g, s.Order); err != nil {
				t.Fatalf("million-node schedule invalid: %v", err)
			}
			if allocsPerNode > tc.maxAllocs {
				t.Errorf("Prioritize allocated %.2f objects/node, budget %.0f", allocsPerNode, tc.maxAllocs)
			}
			if bytesPerNode > tc.maxBytes {
				t.Errorf("Prioritize allocated %.0f B/node, budget %.0f", bytesPerNode, tc.maxBytes)
			}
		})
	}
}
