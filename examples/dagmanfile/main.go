// DAGMan round trip: exercises the prio tool workflow on real files.
//
// Writes a DAGMan input file and its job submit description files into a
// temporary directory (a small Montage-like mosaic), then performs
// exactly what `prio -inplace -submit` does: parse, schedule,
// instrument the DAGMan file with VARS jobpriority lines, and add
// priority = $(jobpriority) to every JSDF. Prints the resulting files.
//
// Run with: go run ./examples/dagmanfile
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/dagman"
	"repro/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "prio-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// A small mosaic workload rendered as a DAGMan file. All jobs of
	// the same stage share one submit description file, which is why
	// the tool uses the jobpriority macro indirection.
	g := workloads.Montage(3, 1)
	submitFor := func(name string) string {
		switch {
		case name[0] != 'm':
			return "generic.sub"
		default:
			// stage name up to the first '.', e.g. mProject.4 -> mProject.sub
			stage := name
			for i, r := range name {
				if r == '.' {
					stage = name[:i]
					break
				}
			}
			return stage + ".sub"
		}
	}
	f := dagman.FromGraph(g, submitFor)
	dagPath := filepath.Join(dir, "montage.dag")
	if err := os.WriteFile(dagPath, []byte(f.String()), 0o644); err != nil {
		panic(err)
	}
	subs := submitFiles(f)
	for _, sub := range subs {
		text := "universe = vanilla\nexecutable = " + sub[:len(sub)-4] + "\nqueue\n"
		if err := os.WriteFile(filepath.Join(dir, sub), []byte(text), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %s with %d jobs and %d submit files\n\n", dagPath, len(f.Jobs), len(subs))

	// --- what `prio -inplace -submit montage.dag` does ---
	parsed, err := dagman.ParseFile(dagPath)
	if err != nil {
		panic(err)
	}
	pg, err := parsed.Graph()
	if err != nil {
		panic(err)
	}
	sched := core.Prioritize(pg)
	prios := make(map[string]int, pg.NumNodes())
	for v := 0; v < pg.NumNodes(); v++ {
		prios[pg.Name(v)] = sched.Priority[v]
	}
	if err := os.WriteFile(dagPath, []byte(parsed.Instrument(prios)), 0o644); err != nil {
		panic(err)
	}
	for _, sub := range subs {
		path := filepath.Join(dir, sub)
		sf, err := dagman.ParseSubmitFile(path)
		if err != nil {
			panic(err)
		}
		sf.InstrumentPriority()
		if err := os.WriteFile(path, []byte(sf.String()), 0o644); err != nil {
			panic(err)
		}
	}

	// Show the first lines of the instrumented outputs.
	out, err := os.ReadFile(dagPath)
	if err != nil {
		panic(err)
	}
	fmt.Println("instrumented montage.dag (first 12 lines):")
	printHead(string(out), 12)
	sub, err := os.ReadFile(filepath.Join(dir, "mProject.sub"))
	if err != nil {
		panic(err)
	}
	fmt.Println("\ninstrumented mProject.sub:")
	fmt.Print(string(sub))
}

// submitFiles returns the distinct submit file names referenced by f,
// sorted, so the files are written and instrumented in a deterministic
// order (this used to iterate a dedup map directly).
func submitFiles(f *dagman.File) []string {
	seen := map[string]bool{}
	var subs []string
	for _, j := range f.Jobs {
		if !seen[j.SubmitFile] {
			seen[j.SubmitFile] = true
			subs = append(subs, j.SubmitFile)
		}
	}
	sort.Strings(subs)
	return subs
}

func printHead(s string, n int) {
	count := 0
	start := 0
	for i := 0; i < len(s) && count < n; i++ {
		if s[i] == '\n' {
			fmt.Println(s[start:i])
			start = i + 1
			count++
		}
	}
	if count == n {
		fmt.Println("...")
	}
}
