package main

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/dagman"
)

// Regression test for a mapiterorder fix: submit files used to be
// written by ranging over a dedup map, so creation and instrumentation
// order varied between runs. submitFiles must return the distinct
// names sorted.
func TestSubmitFilesSortedAndDistinct(t *testing.T) {
	f, err := dagman.Parse(strings.NewReader(
		"Job c z.sub\nJob a a.sub\nJob b m.sub\nJob d a.sub\nJob e m.sub\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := submitFiles(f)
	want := []string{"a.sub", "m.sub", "z.sub"}
	if len(got) != len(want) {
		t.Fatalf("submitFiles = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("submitFiles not sorted: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submitFiles = %v, want %v", got, want)
		}
	}
}
