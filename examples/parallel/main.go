// Parallel: the concurrent, memoized scheduling pipeline on a large
// synthetic Montage-like dag.
//
// Builds a field of mosaic tiles (~29,000 jobs across 96 independent
// components), prioritizes it with the sequential reference pipeline,
// the parallel pipeline, and the parallel pipeline with the schedule
// cache, and verifies that all three produce the identical PRIO order.
// A second cached run on a same-shaped field shows the warm-cache path:
// every component schedule and the transitive reduction are replayed
// from memory. Cache-hit statistics are printed for each stage.
//
// On a single-core machine the parallel timings show overhead, not
// speedup — see the methodology notes in EXPERIMENTS.md.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workloads"
)

func main() {
	// A Montage-like field: 96 tiles, each a random bipartite block of
	// 120 projection jobs feeding 180 difference jobs. sharedShapes
	// repeats one tile structure across the field, the way real mosaic
	// workflows repeat one per-tile sub-dag over the sky.
	g := workloads.TileField(rng.New(11), 96, 120, 180, 12, true)
	fmt.Printf("dag: %d jobs, %d dependencies, %d CPUs available\n\n",
		g.NumNodes(), g.NumArcs(), runtime.NumCPU())

	// Sequential reference.
	t0 := time.Now()
	seq := core.Prioritize(g)
	fmt.Printf("sequential:        %8.1f ms\n", ms(t0))

	// Parallel Recurse + parallel r-priority pre-fill, one worker per
	// CPU (Parallel < 0).
	t0 = time.Now()
	par := core.PrioritizeOpts(g, core.Options{Parallel: -1})
	fmt.Printf("parallel:          %8.1f ms\n", ms(t0))

	// Parallel plus the component-schedule cache, cold.
	cache := core.NewCache()
	t0 = time.Now()
	cached := core.PrioritizeOpts(g, core.Options{Parallel: -1, Cache: cache})
	fmt.Printf("parallel + cache:  %8.1f ms   %s\n", ms(t0), statLine(cache))

	// Warm: prioritize a second field with the same tile shape. The
	// component schedules and the reduction replay from the cache.
	g2 := workloads.TileField(rng.New(11), 96, 120, 180, 12, true)
	t0 = time.Now()
	core.PrioritizeOpts(g2, core.Options{Parallel: -1, Cache: cache})
	fmt.Printf("warm second run:   %8.1f ms   %s\n\n", ms(t0), statLine(cache))

	// All paths must agree with the sequential oracle, job for job.
	for i := range seq.Order {
		if par.Order[i] != seq.Order[i] || cached.Order[i] != seq.Order[i] {
			panic(fmt.Sprintf("schedules diverge at step %d", i))
		}
	}
	fmt.Println("parallel and cached schedules are bit-identical to sequential")

	st := cache.Stats()
	fmt.Printf("final cache state: %d distinct component shapes for %d lookups (%.1f%% hit rate)\n",
		st.Entries, st.Hits+st.Misses, 100*st.HitRate())
}

func ms(t0 time.Time) float64 { return float64(time.Since(t0).Microseconds()) / 1000 }

func statLine(c *core.Cache) string {
	st := c.Stats()
	return fmt.Sprintf("(cache: %d hits / %d misses, %d entries)", st.Hits, st.Misses, st.Entries)
}
