// Sweep: a miniature of the Figures 6-9 evaluation.
//
// Runs the PRIO/FIFO comparison for a scaled-down AIRSN dag over a small
// (mu_BIT, mu_BS) grid and prints the three metric ratios per point,
// demonstrating the trends the paper reports: parity when batches are
// very frequent or enormous, and a clear PRIO win in the middle of the
// batch-size range.
//
// Run with: go run ./examples/sweep
// (cmd/simgrid runs the full paper-scale grid.)
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	g := workloads.AIRSN(60) // width 60: 203 jobs, fast enough to sweep inline
	fmt.Printf("AIRSN width 60: %d jobs\n", g.NumNodes())
	fmt.Println("ratio columns: median [95% CI]; time and stall < 1 mean PRIO wins, utilization > 1 means PRIO wins")

	muBITs := []float64{0.001, 0.1, 1, 10}
	muBSs := []float64{1, 4, 16, 64, 1024}
	opts := sim.ExperimentOptions{P: 20, Q: 20, Seed: 7}

	sim.Sweep(g, muBITs, muBSs, opts, func(gp sim.GridPoint) {
		fmt.Println(gp.FormatRow())
	})
}
