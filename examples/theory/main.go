// Theory: the scheduling theory behind the tool, end to end.
//
// Demonstrates the Section 2 machinery this repository implements
// exactly: the idealized algorithm with its failure modes, the
// IC-optimality oracle, a dag that admits *no* IC-optimal schedule (the
// theory's motivating limitation), and the heuristic's "graceful"
// behaviour on all of them.
//
// Run with: go run ./examples/theory
package main

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/icopt"
)

func main() {
	// 1. A dag composed of recognized building blocks: a (2,2)-W-dag
	// whose sinks feed a join. The theoretical algorithm handles it.
	composed := dag.New()
	u1, u2 := composed.AddNode("u1"), composed.AddNode("u2")
	v1, v2, v3 := composed.AddNode("v1"), composed.AddNode("v2"), composed.AddNode("v3")
	join := composed.AddNode("join")
	composed.MustAddArc(u1, v1)
	composed.MustAddArc(u1, v2)
	composed.MustAddArc(u2, v2)
	composed.MustAddArc(u2, v3)
	for _, v := range []int{v1, v2, v3} {
		composed.MustAddArc(v, join)
	}
	report("W-dag + join", composed.MustFreeze())

	// 2. The crossed dag: no round of the decomposition finds a
	// bipartite building block, so the theoretical algorithm fails and
	// the heuristic's generalized closure takes over.
	crossed := dag.New()
	s1, s2 := crossed.AddNode("s1"), crossed.AddNode("s2")
	x1, x2 := crossed.AddNode("x1"), crossed.AddNode("x2")
	y1, y2 := crossed.AddNode("y1"), crossed.AddNode("y2")
	crossed.MustAddArc(s1, y2)
	crossed.MustAddArc(s1, x1)
	crossed.MustAddArc(s2, y1)
	crossed.MustAddArc(s2, x2)
	crossed.MustAddArc(x1, y1)
	crossed.MustAddArc(x2, y2)
	report("crossed", crossed.MustFreeze())

	// 3. A dag that admits no IC-optimal schedule at all (found by the
	// icopt search; see internal/icopt's tests).
	none := dag.New()
	for i := 0; i < 8; i++ {
		none.AddNode(fmt.Sprintf("n%d", i))
	}
	for _, arc := range [][2]int{{0, 1}, {0, 5}, {1, 5}, {1, 6}, {3, 5}, {3, 6}, {4, 7}} {
		none.MustAddArc(arc[0], arc[1])
	}
	report("no-IC-optimal", none.MustFreeze())

	// 4. The Fig. 2 families all classify and schedule optimally.
	fmt.Println("\nFig. 2 building blocks:")
	for _, blk := range fig2Blocks() {
		c, ok := bipartite.Classify(blk.g)
		optimal, _, _ := icopt.IsICOptimal(blk.g, core.Prioritize(blk.g).Order)
		fmt.Printf("  %-9s classified=%v family=%v heuristic IC-optimal=%v\n", blk.name, ok, c.Family, optimal)
	}
}

// fig2Blocks returns the Fig. 2 building-block dags in a fixed order,
// so the report is byte-identical across runs (this used to range over
// a map, which printed in random order).
func fig2Blocks() []struct {
	name string
	g    *dag.Frozen
} {
	return []struct {
		name string
		g    *dag.Frozen
	}{
		{"(2,2)-W", bipartite.NewW(2, 2)},
		{"(2,5)-M", bipartite.NewM(2, 5)},
		{"4-N", bipartite.NewN(4)},
		{"4-Cycle", bipartite.NewCycle(4)},
		{"3-Clique", bipartite.NewClique(3, 3)},
	}
}

func report(name string, g *dag.Frozen) {
	fmt.Printf("\n%s (%d jobs, %d deps):\n", name, g.NumNodes(), g.NumArcs())

	if _, err := core.TheoreticalSchedule(g); err != nil {
		fmt.Printf("  theoretical algorithm: fails (%v)\n", err)
	} else {
		fmt.Printf("  theoretical algorithm: succeeds\n")
	}

	admits, err := icopt.AdmitsICOptimalSchedule(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  admits an IC-optimal schedule: %v\n", admits)

	s := core.Prioritize(g)
	optimal, at, err := icopt.IsICOptimal(g, s.Order)
	if err != nil {
		panic(err)
	}
	if optimal {
		fmt.Printf("  heuristic schedule: IC-optimal\n")
	} else {
		envelope, _ := icopt.OptimalTrace(g)
		trace, _ := core.EligibilityTrace(g, s.Order)
		fmt.Printf("  heuristic schedule: first falls short at step %d (%d eligible vs optimum %d)\n",
			at, trace[at], envelope[at])
	}
}
