package main

import "testing"

// Regression test for a mapiterorder fix: the Fig. 2 block report used
// to range over a map, so its line order varied between runs. The
// blocks must come back in the fixed declaration order every time.
func TestFig2BlocksDeterministicOrder(t *testing.T) {
	want := []string{"(2,2)-W", "(2,5)-M", "4-N", "4-Cycle", "3-Clique"}
	for run := 0; run < 3; run++ {
		blocks := fig2Blocks()
		if len(blocks) != len(want) {
			t.Fatalf("got %d blocks, want %d", len(blocks), len(want))
		}
		for i, blk := range blocks {
			if blk.name != want[i] {
				t.Fatalf("run %d: block %d = %q, want %q", run, i, blk.name, want[i])
			}
			if blk.g == nil || blk.g.NumNodes() == 0 {
				t.Fatalf("block %q has an empty graph", blk.name)
			}
		}
	}
}
