// Quickstart: the paper's Fig. 3 example, end to end.
//
// Builds the five-job dag (a -> b, c -> d, c -> e), runs the prio
// scheduling heuristic, and prints the PRIO schedule, the per-job
// priorities, and the instrumented DAGMan input file — reproducing the
// c, a, b, d, e schedule shown in the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dagman"
)

const inputFile = `Job a a.sub
Job b b.sub
Job c c.sub
Job d d.sub
Job e e.sub
Parent a Child b
Parent c Child d e
`

func main() {
	// Parse the DAGMan input file and extract the dag of dependencies.
	f, err := dagman.Parse(strings.NewReader(inputFile))
	if err != nil {
		panic(err)
	}
	g, err := f.Graph()
	if err != nil {
		panic(err)
	}

	// Apply the scheduling heuristic (Divide / Recurse / Combine).
	sched := core.Prioritize(g)

	fmt.Println("PRIO schedule:")
	for i, v := range sched.Order {
		sep := ", "
		if i == len(sched.Order)-1 {
			sep = "\n"
		}
		fmt.Printf("%s%s", g.Name(v), sep)
	}

	fmt.Println("\nJob priorities (larger runs first):")
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Printf("  %s: %d\n", g.Name(v), sched.Priority[v])
	}

	// Instrument the DAGMan file the way the prio tool does.
	priorities := make(map[string]int)
	for v := 0; v < g.NumNodes(); v++ {
		priorities[g.Name(v)] = sched.Priority[v]
	}
	fmt.Println("\nInstrumented DAGMan input file:")
	fmt.Println(f.Instrument(priorities))

	// And the one-line change to each job submit description file.
	sf, err := dagman.ParseSubmit(strings.NewReader("executable = work\nqueue\n"))
	if err != nil {
		panic(err)
	}
	sf.InstrumentPriority()
	fmt.Println("Instrumented submit description file:")
	fmt.Println(sf.String())

	// Compare the number of eligible jobs under PRIO and FIFO at every
	// step (the Fig. 4 quantity).
	fifo := core.FIFOSchedule(g)
	diff, err := core.TraceDifference(g, sched.Order, fifo)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eligibility difference PRIO-FIFO by step: %v\n", diff)
}
