// AIRSN: the paper's headline experiment.
//
// Builds the width-250 AIRSN dag (773 jobs), shows the Fig. 5 bottleneck
// prioritization (the fork job gets priority 753, ahead of all 250
// fringe jobs), and runs the stochastic grid simulation at the headline
// parameter point (mu_BIT = 1, mu_BS = 2^4), reporting the PRIO/FIFO
// ratio of expected execution times with its 95% confidence interval —
// the paper's "at least 13% faster with 95% confidence" claim.
//
// Run with: go run ./examples/airsn
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	g := workloads.PaperAIRSN()
	fmt.Printf("AIRSN width 250: %d jobs, %d dependencies\n", g.NumNodes(), g.NumArcs())

	// Fig. 5: the fork job is the bottleneck; prio ranks it just after
	// its ancestors, before every fringe job.
	sched := core.Prioritize(g)
	fork := workloads.AIRSNForkJob(g)
	fmt.Printf("fork job %q priority: %d (Fig. 5 shows 753)\n", g.Name(fork), sched.Priority[fork])
	fmt.Printf("first fringe priority: %d (lower = later)\n", sched.Priority[g.IndexOf("f0")])

	// Fig. 4 (AIRSN panel): the eligibility advantage of PRIO.
	diff, err := core.TraceDifference(g, sched.Order, core.FIFOSchedule(g))
	if err != nil {
		panic(err)
	}
	maxDiff, at := 0, 0
	for t, d := range diff {
		if d > maxDiff {
			maxDiff, at = d, t
		}
	}
	fmt.Printf("max eligibility advantage: +%d jobs at step %d\n\n", maxDiff, at)

	// The headline simulation. The paper uses p = q = 300; 40 keeps
	// this example fast while giving a tight interval.
	opts := sim.ExperimentOptions{P: 40, Q: 40, Seed: 1}
	point := sim.DefaultParams(1, 16) // mu_BIT = 1, mu_BS = 2^4
	fmt.Println("simulating PRIO vs FIFO at mu_BIT=1, mu_BS=16 ...")
	c := sim.ComparePRIOFIFO(g, point, opts)

	fmt.Printf("expected execution time  PRIO/FIFO: %v\n", c.ExecTime)
	fmt.Printf("probability of stalling  PRIO/FIFO: %v\n", c.Stalling)
	fmt.Printf("expected utilization     PRIO/FIFO: %v\n", c.Utilization)
	if c.ExecTime.Valid {
		fmt.Printf("\nPRIO is %.0f%% faster in the median, and at least %.0f%% faster with 95%% confidence.\n",
			(1-c.ExecTime.Median)*100, (1-c.ExecTime.Hi)*100)
	}
}
