// Package repro reproduces "A Tool for Prioritizing DAGMan Jobs and Its
// Evaluation" (Malewicz, Foster, Rosenberg, Wilde; HPDC/J. Grid
// Computing 2006): the prio scheduling heuristic, its Condor DAGMan
// integration surface, the four scientific workload dags, and the
// stochastic grid simulation used to evaluate PRIO against FIFO.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// the runnable entry points are cmd/prio, cmd/simgrid, cmd/eligdiff,
// cmd/overhead, and the programs under examples/. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation; EXPERIMENTS.md records paper-versus-measured results.
package repro
