package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dagman"
	"repro/internal/workloads"
)

// prerefactorGolden is one entry of testdata/prerefactor_schedules.json,
// generated on the pre-refactor dag.Graph pipeline ([][]int adjacency,
// per-pass copies) immediately before the frozen-CSR core landed. The
// hashes pin the externally visible outputs of the parse→schedule→
// instrument path; the refactor was a representation change, so every
// one of them must reproduce bit-for-bit on the Frozen pipeline.
type prerefactorGolden struct {
	Arcs         int    `json:"arcs"`
	OrderHash    string `json:"order_sha256"`
	PrioHash     string `json:"priorities_sha256"`
	InstrHash    string `json:"instrumented_sha256"`
	FIFOHash     string `json:"fifo_sha256"`
	TheoreticalE string `json:"theoretical"`
}

// paperDagSizes pins the node counts of the paper-scale dags directly
// (the golden file records only arc counts).
var paperDagSizes = map[string]int{
	"airsn":    773,
	"inspiral": 2988,
	"montage":  7881,
	"sdss":     48013,
}

// TestFrozenSchedulesMatchPreRefactor is the differential gate for the
// frozen-CSR refactor: on every paper dag, the prio order, the priority
// assignment, the instrumented DAGMan file, the FIFO baseline schedule,
// and the theoretical algorithm's outcome must be byte-identical to the
// pre-refactor pipeline's, as recorded in
// testdata/prerefactor_schedules.json.
func TestFrozenSchedulesMatchPreRefactor(t *testing.T) {
	raw, err := os.ReadFile("testdata/prerefactor_schedules.json")
	if err != nil {
		t.Fatal(err)
	}
	goldens := make(map[string]prerefactorGolden)
	if err := json.Unmarshal(raw, &goldens); err != nil {
		t.Fatal(err)
	}
	h := func(s string) string {
		sum := sha256.Sum256([]byte(s))
		return hex.EncodeToString(sum[:])
	}
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			want, ok := goldens[name]
			if !ok {
				t.Fatalf("no pre-refactor golden for %s", name)
			}
			g, err := workloads.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() != paperDagSizes[name] {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), paperDagSizes[name])
			}
			if g.NumArcs() != want.Arcs {
				t.Errorf("arcs = %d, want %d", g.NumArcs(), want.Arcs)
			}

			s := core.Prioritize(g)
			var ord, pri strings.Builder
			for _, v := range s.Order {
				ord.WriteString(g.Name(v))
				ord.WriteByte('\n')
			}
			prios := make(map[string]int, g.NumNodes())
			for v := 0; v < g.NumNodes(); v++ {
				fmt.Fprintf(&pri, "%s=%d\n", g.Name(v), s.Priority[v])
				prios[g.Name(v)] = s.Priority[v]
			}
			if got := h(ord.String()); got != want.OrderHash {
				t.Errorf("prio order diverged from pre-refactor pipeline: %s", got)
			}
			if got := h(pri.String()); got != want.PrioHash {
				t.Errorf("priority assignment diverged from pre-refactor pipeline: %s", got)
			}

			instr := dagman.FromGraph(g, nil).Instrument(prios)
			if got := h(instr); got != want.InstrHash {
				t.Errorf("instrumented DAGMan file diverged from pre-refactor pipeline: %s", got)
			}

			var fifo strings.Builder
			for _, v := range core.FIFOSchedule(g) {
				fifo.WriteString(g.Name(v))
				fifo.WriteByte('\n')
			}
			if got := h(fifo.String()); got != want.FIFOHash {
				t.Errorf("FIFO schedule diverged from pre-refactor pipeline: %s", got)
			}

			theo := "ok"
			if _, err := core.TheoreticalSchedule(g); err != nil {
				theo = err.Error()
			}
			if theo != want.TheoreticalE {
				t.Errorf("theoretical outcome = %q, want %q", theo, want.TheoreticalE)
			}
		})
	}
}
