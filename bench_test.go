// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark is named for the exhibit it reproduces:
//
//	Fig. 3   BenchmarkFig3PrioPipeline        (the worked 5-job example)
//	Fig. 4   BenchmarkFig4EligibilityDiff/*   (PRIO-FIFO eligibility traces)
//	Fig. 5   BenchmarkFig5AIRSNBottleneck     (AIRSN prioritization)
//	Fig. 6   BenchmarkFig6AIRSN               (simulation ratios, AIRSN)
//	Fig. 7   BenchmarkFig7Inspiral
//	Fig. 8   BenchmarkFig8SDSS
//	Fig. 9   BenchmarkFig9Montage
//	S 3.5    BenchmarkAblationFastPath/*      (bipartite fast path on/off)
//	         BenchmarkAblationCombine/*       (B-tree vs naive Combine)
//	S 3.6    BenchmarkOverhead/*              (scheduling the four dags)
//
// The simulation benchmarks fix mu_BIT = 1 and use each dag's
// best-gain batch size from the paper (AIRSN 2^5, Inspiral 2^9,
// Montage 2^7, SDSS 2^13) on scaled-down dags so a full -bench=. run
// stays in the minutes; cmd/simgrid regenerates the complete grids.
package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dagman"
	"repro/internal/decompose"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func BenchmarkFig3PrioPipeline(b *testing.B) {
	g := quickstartDag()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.Prioritize(g)
		if g.Name(s.Order[0]) != "c" {
			b.Fatal("Fig. 3 schedule regressed")
		}
	}
}

func quickstartDag() *dag.Frozen {
	g := dag.New()
	a, bb, c, d, e := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d"), g.AddNode("e")
	g.MustAddArc(a, bb)
	g.MustAddArc(c, d)
	g.MustAddArc(c, e)
	return g.MustFreeze()
}

func BenchmarkFig4EligibilityDiff(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			g, err := workloads.ByName(name, 1) // paper-scale dags
			if err != nil {
				b.Fatal(err)
			}
			prio := core.Prioritize(g).Order
			fifo := core.FIFOSchedule(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				diff, err := core.TraceDifference(g, prio, fifo)
				if err != nil {
					b.Fatal(err)
				}
				sum := 0
				for _, d := range diff {
					sum += d
				}
				// PRIO must not be meaningfully below FIFO. Montage sits
				// at ~zero (the paper's weakest case, with -1..-3 job dips
				// from the outdegree order on its grid component); the
				// other dags are strongly positive.
				if sum < -len(diff) {
					b.Fatalf("%s: PRIO cumulatively below FIFO (sum %d over %d steps)", name, sum, len(diff))
				}
			}
		})
	}
}

func BenchmarkFig5AIRSNBottleneck(b *testing.B) {
	g := workloads.PaperAIRSN()
	fork := workloads.AIRSNForkJob(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.Prioritize(g)
		if s.Priority[fork] != 753 {
			b.Fatalf("fork priority = %d, want 753", s.Priority[fork])
		}
	}
}

// benchSimPoint runs one PRIO/FIFO comparison per iteration at the
// paper's best-gain point for the dag — 2·P·Q replications through the
// flat grid engine — and reports replication throughput, the figure of
// merit for the 11.3M-run evaluation (see EXPERIMENTS.md "Simulation
// engine").
func benchSimPoint(b *testing.B, name string, scale int, muBS float64) {
	g, err := workloads.ByName(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.ExperimentOptions{P: 6, Q: 6, Seed: 1}
	reps := float64(2 * opts.P * opts.Q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = uint64(i + 1)
		c := sim.ComparePRIOFIFO(g, sim.DefaultParams(1, muBS), opts)
		if !c.ExecTime.Valid {
			b.Fatal("invalid CI")
		}
	}
	b.ReportMetric(reps*float64(b.N)/b.Elapsed().Seconds(), "reps/s")
}

func BenchmarkFig6AIRSN(b *testing.B)    { benchSimPoint(b, "airsn", 4, 32) }     // 2^5
func BenchmarkFig7Inspiral(b *testing.B) { benchSimPoint(b, "inspiral", 8, 512) } // 2^9
func BenchmarkFig8SDSS(b *testing.B)     { benchSimPoint(b, "sdss", 40, 8192) }   // 2^13
func BenchmarkFig9Montage(b *testing.B)  { benchSimPoint(b, "montage", 9, 128) }  // 2^7

// Section 3.5: the bipartite fast path turned SDSS decomposition from
// days into minutes. The general path is benchmarked on a smaller SDSS
// so the comparison completes.
func BenchmarkAblationFastPath(b *testing.B) {
	g, err := workloads.ByName("sdss", 40)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				decompose.DecomposeOpts(g, decompose.Options{DisableFastPath: tc.disable})
			}
		})
	}
}

// Section 3.5: the B-tree priority queue in the Combine phase versus the
// naive quadratic re-evaluation. Inspiral has the most components
// (about 1,400), making the superdag processing cost visible.
func BenchmarkAblationCombine(b *testing.B) {
	g := workloads.PaperInspiral()
	for _, tc := range []struct {
		name string
		s    core.CombineStrategy
	}{{"btree", core.CombineBTree}, {"naive", core.CombineNaive}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.PrioritizeOpts(g, core.Options{Combine: tc.s})
			}
		})
	}
}

// Extension: per-policy simulation cost at the headline point — PRIO's
// B-tree dispatch versus FIFO's queue versus the randomized and
// critical-path baselines and the throttled two-level queue.
func BenchmarkPolicies(b *testing.B) {
	g, err := workloads.ByName("airsn", 1)
	if err != nil {
		b.Fatal(err)
	}
	p := sim.DefaultParams(1, 16)
	for _, name := range []string{"prio", "fifo", "random", "critpath", "prio-maxjobs=16"} {
		factory, err := sim.PolicyFactory(name, g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			pol := factory()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.Run(g, p, pol, rng.New(uint64(i+1)))
			}
		})
	}
}

// The parallel, memoized pipeline: end-to-end prioritization of a
// Montage-like multi-component dag (workloads.TileField), sequential
// reference versus the fanned-out Recurse phase versus the
// component-signature cache. Run with
//
//	go test . -bench ParallelPipeline -benchtime 5x
//
// The differential tests in internal/core prove every variant emits a
// bit-identical schedule; these benchmarks record the speedup.
func BenchmarkParallelPipeline(b *testing.B) {
	g := workloads.TileField(rng.New(11), 96, 120, 180, 12, false)
	b.Logf("nodes=%d arcs=%d", g.NumNodes(), g.NumArcs())
	run := func(opts core.Options) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.PrioritizeOpts(g, opts)
			}
		}
	}
	b.Run("sequential", run(core.Options{}))
	b.Run("parallel2", run(core.Options{Parallel: 2}))
	b.Run("parallel4", run(core.Options{Parallel: 4}))
	b.Run("parallelAll", run(core.Options{Parallel: -1}))
	b.Run("parallel4+cache", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.PrioritizeOpts(g, core.Options{Parallel: 4, Cache: core.NewCache()})
		}
	})
}

// The memo cache on a repeated-shape field: every tile is the same
// shape, the situation of SDSS's thousands of identical chains. The
// warm case additionally reuses the cache (and its embedded transitive
// reduction) across calls, the cmd/prio -cache multi-stage scenario.
func BenchmarkScheduleCache(b *testing.B) {
	g := workloads.TileField(rng.New(13), 96, 120, 180, 12, true)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.PrioritizeOpts(g, core.Options{})
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.PrioritizeOpts(g, core.Options{Cache: core.NewCache()})
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := core.NewCache()
		core.PrioritizeOpts(g, core.Options{Cache: cache})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.PrioritizeOpts(g, core.Options{Cache: cache})
		}
	})
}

// Section 3.6: running time (and, via -benchmem, allocation) of the
// full prio pipeline on the four paper-scale dags.
func BenchmarkOverhead(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			g, err := workloads.ByName(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Prioritize(g)
			}
		})
	}
}

// BenchmarkParseSchedule measures the end-to-end parse→Graph→Prioritize
// path on the four paper dags. It is
// the frozen-CSR core's allocation gate: make bench-core pipes it
// through cmd/benchjson, which asserts allocs/op against the checked-in
// baseline in results/core-bench-baseline.json. The DAGMan text is
// rendered once outside the timer so the loop measures exactly what
// the prio tool does per invocation: parse a submit file, freeze the
// dag, and schedule it.
func BenchmarkParseSchedule(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			g, err := workloads.ByName(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			text := dagman.FromGraph(g, nil).String()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := dagman.Parse(strings.NewReader(text))
				if err != nil {
					b.Fatal(err)
				}
				gg, err := f.Graph()
				if err != nil {
					b.Fatal(err)
				}
				s := core.Prioritize(gg)
				if len(s.Order) != gg.NumNodes() {
					b.Fatal("bad schedule")
				}
			}
		})
	}
}
