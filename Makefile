# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check check-race lint race cover bench bench-sim bench-sim-smoke bench-core bench-core-smoke bench-serve bench-serve-smoke fuzz fuzz-smoke sweeps examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# The full gate: formatting, vet, the project's own analyzers (via the
# lint target — one definition of the lint step), and the whole suite
# under the race detector (exercises the parallel pipeline's
# differential tests).
check: lint
	@unformatted=$$(gofmt -l . | grep -v /testdata/ || true); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) check-race

# Full suite under the race detector — every package, not just the
# parallel pipeline's (compare `race` below). CI's "test (race)" step
# runs this target so local and CI gates cannot drift.
check-race:
	$(GO) test -race ./...

# The determinism/concurrency/zero-alloc analyzers (see
# internal/analysis). Run over ./... so the interprocedural analyzers
# see every implementation; spot-checking one package weakens noalloc
# and purity to intra-package claims.
lint:
	$(GO) run ./cmd/priolint ./...

race:
	$(GO) test -race ./internal/sim ./internal/core

cover:
	$(GO) test -cover ./internal/...

# One benchmark per paper exhibit plus the Section 3.5 ablations.
bench:
	$(GO) test . -bench . -benchmem -benchtime 3x

# Replication-kernel throughput: run the simulation-engine benchmarks,
# archive the raw text in results/engine-bench.txt, and emit
# machine-readable BENCH_sim.json (reps/s, allocs/op per benchmark).
# The zero-alloc and zero-byte assertions make this a gate, not just a
# report: BenchmarkRunAIRSN is the pre-engine per-run cost (fresh state
# every replication) kept for comparison, BenchmarkRunKernel the pooled
# kernel that must stay allocation-free — B/op included, so amortized
# slice regrowth (which rounds to 0 allocs/op) cannot creep back in.
bench-sim:
	mkdir -p results
	$(GO) test ./internal/sim -run xxx -bench 'BenchmarkRunKernel|BenchmarkEngineGrid|BenchmarkRunAIRSN' -benchmem > results/engine-bench.txt
	cat results/engine-bench.txt
	$(GO) run ./cmd/benchjson -assert-zero-allocs 'RunKernel/' -assert-zero-bytes 'RunKernel/' -o BENCH_sim.json results/engine-bench.txt

# Short form for CI: a few hundred kernel replications, enough for the
# steady-state zero-alloc/zero-byte gates plus a coarse ns/op trend
# check against the checked-in BENCH_sim.json — a kernel change that
# loses more than 15% throughput on the measured subset fails here
# instead of landing silently (refresh the baseline with `make
# bench-sim` when a slowdown is intentional). The airsn pattern covers
# one row per policy family (prio, fifo, and the ranker-tier heft), so
# the zero-byte assertion gates the new families' fast path too.
bench-sim-smoke:
	$(GO) test ./internal/sim -run xxx -bench 'BenchmarkRunKernel/airsn' -benchtime 2000x -benchmem | $(GO) run ./cmd/benchjson -assert-zero-allocs 'RunKernel/' -assert-zero-bytes 'RunKernel/' -assert-ns-trend BENCH_sim.json -ns-tolerance 1.15

# Frozen-core allocation gate: the end-to-end parse -> Graph ->
# Prioritize path on the AIRSN/Inspiral/SDSS dags, archived as raw text
# in results/core-bench.txt and machine-readable BENCH_core.json. The
# baseline assertion makes this a gate: allocs/op per workload must stay
# within 10% of the checked-in results/core-bench-baseline.json (the
# post-refactor profile — at least 2x fewer allocations per schedule
# than the pre-refactor pipeline recorded in
# results/core-bench-prerefactor.txt).
bench-core:
	mkdir -p results
	$(GO) test . -run xxx -bench 'BenchmarkParseSchedule' -benchtime 5x -benchmem > results/core-bench.txt
	cat results/core-bench.txt
	$(GO) run ./cmd/benchjson -assert-allocs-baseline results/core-bench-baseline.json -o BENCH_core.json results/core-bench.txt

# Short form for CI: one pass per workload still yields exact allocs/op
# (the schedule pipeline is deterministic), so the regression gate is as
# strong as the full run and finishes in seconds. The ns/op trend gate
# against the checked-in BENCH_core.json mirrors bench-sim-smoke; the
# looser tolerance absorbs single-iteration timing jitter while still
# catching an accidentally quadratic parse -> schedule path (refresh
# the baseline with `make bench-core` when a slowdown is intentional).
bench-core-smoke:
	$(GO) test . -run xxx -bench 'BenchmarkParseSchedule' -benchtime 1x -benchmem | $(GO) run ./cmd/benchjson -assert-allocs-baseline results/core-bench-baseline.json -assert-ns-trend BENCH_core.json -ns-tolerance 1.6

# Serving-layer load benchmark: cmd/prioload drives 32 concurrent
# clients posting the AIRSN/Inspiral/Montage dags over real HTTP at an
# in-process priod server and reports mean/p50/p99 latency, throughput,
# and server RSS per dag. The sequential ServePrioritize micro-bench
# rows are merged into the same archive so BENCH_serve.json carries a
# per-request ns/op baseline the smoke's trend gate can compare against
# (the concurrent ServeLoad rows are too machine-dependent to gate on).
# Raw text lands in results/serve-bench.txt, machine-readable
# BENCH_serve.json next to the other BENCH_*.json artifacts.
# Methodology in EXPERIMENTS.md "The serving layer".
bench-serve:
	mkdir -p results
	$(GO) run ./cmd/prioload -dags airsn,inspiral,montage -clients 32 -requests 32 -warmup 32 > results/serve-bench.txt
	$(GO) test ./internal/serve -run xxx -bench 'BenchmarkServePrioritize' -benchtime 100x -benchmem >> results/serve-bench.txt
	cat results/serve-bench.txt
	$(GO) run ./cmd/benchjson -o BENCH_serve.json results/serve-bench.txt

# Short form for CI: the serving layer's allocation gate. Sequential
# in-process requests through the real mux are deterministic enough for
# a per-request allocs/op assertion against the checked-in baseline;
# the generous tolerance absorbs pool-refill and map-growth jitter
# while still catching an accidentally quadratic or per-request-copying
# serving path. The ns/op trend gate compares the same ServePrioritize
# rows against the ones bench-serve merged into BENCH_serve.json, so a
# latency regression on the response path fails here too (refresh the
# baseline with `make bench-serve` when a slowdown is intentional).
bench-serve-smoke:
	$(GO) test ./internal/serve -run xxx -bench 'BenchmarkServePrioritize' -benchtime 30x -benchmem | $(GO) run ./cmd/benchjson -assert-allocs-baseline results/serve-bench-baseline.json -allocs-tolerance 1.5 -assert-ns-trend BENCH_serve.json -ns-tolerance 1.6

fuzz:
	$(GO) test ./internal/dagman -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/dagman -fuzz FuzzParseSubmit -fuzztime 30s
	$(GO) test ./internal/dagman -fuzz FuzzParseDAGMan -fuzztime 30s
	$(GO) test ./internal/core -fuzz FuzzSchedule -fuzztime 30s
	$(GO) test ./internal/sim -fuzz FuzzKernelReplication -fuzztime 30s
	$(GO) test ./internal/serve -fuzz FuzzPrioritizeRequest -fuzztime 30s

# Short fuzz pass for CI: 10s per target on the invariants that matter
# most (parser round-trip, schedule validity/determinism, pooled-kernel
# equivalence, response determinism and well-formedness through the
# real mux).
fuzz-smoke:
	$(GO) test ./internal/dagman -run xxx -fuzz FuzzParseDAGMan -fuzztime 10s
	$(GO) test ./internal/core -run xxx -fuzz FuzzSchedule -fuzztime 10s
	$(GO) test ./internal/sim -run xxx -fuzz FuzzKernelReplication -fuzztime 10s
	$(GO) test ./internal/serve -run xxx -fuzz FuzzPrioritizeRequest -fuzztime 10s

# Regenerate the Figures 6-9 sweeps into results/ (about 10 minutes).
sweeps:
	mkdir -p results
	$(GO) run ./cmd/simgrid -dag airsn    -scale 1 -p 25 -q 25 > results/fig6_airsn.txt
	$(GO) run ./cmd/simgrid -dag inspiral -scale 1 -p 15 -q 15 > results/fig7_inspiral.txt
	$(GO) run ./cmd/simgrid -dag sdss     -scale 1 -p 8  -q 8  > results/fig8_sdss.txt
	$(GO) run ./cmd/simgrid -dag montage  -scale 1 -p 12 -q 12 > results/fig9_montage.txt
	$(GO) run ./cmd/eligdiff -dag airsn -summary    > results/fig4_eligibility.txt
	$(GO) run ./cmd/eligdiff -dag inspiral -summary >> results/fig4_eligibility.txt
	$(GO) run ./cmd/eligdiff -dag montage -summary  >> results/fig4_eligibility.txt
	$(GO) run ./cmd/eligdiff -dag sdss -summary     >> results/fig4_eligibility.txt
	$(GO) run ./cmd/overhead > results/overhead.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/theory
	$(GO) run ./examples/dagmanfile
	$(GO) run ./examples/sweep
	$(GO) run ./examples/parallel
	$(GO) run ./examples/airsn

clean:
	$(GO) clean ./...
